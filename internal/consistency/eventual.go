package consistency

import (
	"context"
	"fmt"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// EventualCM implements the relaxed protocol the paper anticipates for
// "applications such as web caches and some database query engines for
// which release consistency is overkill. Such applications typically can
// tolerate data that is temporarily out-of-date (i.e., one or two versions
// old) as long as they get fast response" (§3.3).
//
// Reads and writes are served entirely from the local replica; dirty pages
// propagate to the home at release time with a last-writer-wins timestamp,
// and the home gossips accepted updates to the other replica sites. All
// replicas converge on the maximum-stamped update; intermediate reads may
// be stale by design.
//
// Two mechanisms keep page bytes and LWW stamps paired without blocking:
// inbound updates arriving while a local write lock is held are parked and
// applied at release, and the CM keeps an authoritative shadow of the
// winning bytes so a local write that loses the LWW race can be rolled
// back.
type EventualCM struct {
	h Host

	// pushFailures counts update propagations (gossip rounds) that
	// failed to reach a replica site; the anti-entropy / replica
	// maintenance path uses it to observe divergence pressure instead
	// of the failures vanishing silently. Registry-backed, so it also
	// surfaces through `khazctl stats` and /metrics.
	pushFailures *telemetry.Counter
	// applyFailures counts parked updates that could not be applied at
	// lock release (e.g. local store errors) — each one means a replica
	// is still a version behind. Registry-backed like pushFailures.
	applyFailures *telemetry.Counter

	mu sync.Mutex
	// auth shadows the LWW-winning contents per page; each entry holds
	// one frame reference, released when the entry is replaced. The
	// frames are shared (responses alias them), so their contents are
	// immutable.
	auth map[gaddr.Addr]*frame.Frame
	// pending parks updates that arrived under a local write lock.
	pending map[gaddr.Addr]*parkedUpdate
}

// parkedUpdate is an inbound update held until the local write lock
// releases. It owns one reference on f (taken off the inbound message,
// whose buffer the transport may recycle after the handler returns).
type parkedUpdate struct {
	//khazana:frame-owner released when the parked update is applied or superseded
	f      *frame.Frame
	stamp  int64
	origin ktypes.NodeID
}

// PushFailures reports how many best-effort update propagations to
// replica sites have failed so far.
func (c *EventualCM) PushFailures() uint64 { return c.pushFailures.Load() }

// ApplyFailures reports how many parked updates failed to apply at
// release time.
func (c *EventualCM) ApplyFailures() uint64 { return c.applyFailures.Load() }

// NewEventual creates the eventual-consistency manager for a node.
func NewEventual(h Host) *EventualCM {
	tel := h.Telemetry()
	return &EventualCM{
		h:             h,
		pushFailures:  tel.Counter(telemetry.MetricEventualPushFailures),
		applyFailures: tel.Counter(telemetry.MetricEventualApplyFailures),
		auth:          make(map[gaddr.Addr]*frame.Frame),
		pending:       make(map[gaddr.Addr]*parkedUpdate),
	}
}

var _ CM = (*EventualCM)(nil)

// Protocol implements CM.
func (c *EventualCM) Protocol() region.Protocol { return region.Eventual }

// Acquire implements CM. The only remote traffic is a one-time fetch when
// the node has no replica at all — the fast-response property.
func (c *EventualCM) Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error {
	if err := c.h.Locks().Acquire(ctx, page, mode); err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	resident := false
	if lf, ok := c.h.LoadPage(page); ok {
		resident = true
		lf.Release()
	}
	if resident || isHome(c.h, desc) {
		if isHome(c.h, desc) {
			c.h.Dir().Update(page, func(e *pagedir.Entry) { e.HomedLocal = true })
		}
		return nil
	}
	if err := c.fetchInitial(ctx, desc, page); err != nil {
		c.h.Locks().Release(page, mode)
		return err
	}
	return nil
}

// fetchInitial pulls the first local replica from the home.
func (c *EventualCM) fetchInitial(ctx context.Context, desc *region.Descriptor, page gaddr.Addr) error {
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	resp, err := c.h.Request(ctx, home, &wire.PageFetch{Page: page, Requester: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: eventual fetch %v: %w", page, err)
	}
	pd, ok := resp.(*wire.PageData)
	if !ok {
		return fmt.Errorf("consistency: eventual fetch %v: unexpected reply %T", page, resp)
	}
	var f *frame.Frame
	if pd.Found {
		f = pd.TakeFrame()
	}
	if f == nil {
		f = zeroFill(desc)
	}
	defer f.Release()
	c.mu.Lock()
	defer c.mu.Unlock()
	if lf, already := c.h.LoadPage(page); already {
		lf.Release()
		return nil // a concurrent update beat us to it
	}
	if err := c.h.StorePage(page, f); err != nil {
		return err
	}
	c.setAuthLocked(page, f)
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.State = pagedir.Shared
		e.Version = pd.Version
	})
	return nil
}

// setAuthLocked replaces the auth shadow for page with f (borrowed; the
// map takes its own reference). Caller holds c.mu.
func (c *EventualCM) setAuthLocked(page gaddr.Addr, f *frame.Frame) {
	old := c.auth[page]
	//khazana:frame-owner auth map holds one reference per entry
	c.auth[page] = f.Retain()
	if old != nil {
		old.Release()
	}
}

// applyLocked installs (f, stamp, origin) iff it supersedes the local
// state under last-writer-wins. f is borrowed; f == nil means "the bytes
// already in the local store" (a local write claiming its stamp). Caller
// holds c.mu.
func (c *EventualCM) applyLocked(page gaddr.Addr, f *frame.Frame, stamp int64, origin ktypes.NodeID) (bool, error) {
	entry, _ := c.h.Dir().Lookup(page)
	if !newerStamp(stamp, origin, &entry) {
		return false, nil
	}
	if f == nil {
		//khazana:frame-owner the loaded reference transfers into the auth map below
		stored, ok := c.h.LoadPage(page)
		if !ok {
			return false, fmt.Errorf("consistency: eventual claim %v: no local data", page)
		}
		// Transfer the loaded reference straight into the auth map.
		old := c.auth[page]
		//khazana:frame-owner auth map holds one reference per entry
		c.auth[page] = stored
		if old != nil {
			old.Release()
		}
	} else {
		if err := c.h.StorePage(page, f); err != nil {
			return false, err
		}
		c.setAuthLocked(page, f)
	}
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.Stamp = stamp
		e.StampNode = origin
		e.Version++
		e.State = pagedir.Shared
	})
	return true, nil
}

// newerStamp reports whether (stamp, node) supersedes the entry under
// last-writer-wins with node-ID tiebreak.
func newerStamp(stamp int64, node ktypes.NodeID, e *pagedir.Entry) bool {
	if stamp != e.Stamp {
		return stamp > e.Stamp
	}
	return node > e.StampNode
}

// Release implements CM.
func (c *EventualCM) Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error {
	defer func() {
		c.applyPending(ctx, desc, page)
		c.h.Locks().Release(page, mode)
	}()
	if !mode.Writes() || !dirty {
		return nil
	}
	stamp := c.h.Clock()
	self := c.h.Self()

	c.mu.Lock()
	claimed, err := c.applyLocked(page, nil, stamp, self)
	if err == nil && !claimed {
		// A newer update won while we were writing; our bytes lose
		// under LWW. Roll the store back to the winning contents.
		if auth, ok := c.auth[page]; ok {
			err = c.h.StorePage(page, auth)
		}
	}
	var f *frame.Frame
	if claimed {
		// Pin the claimed bytes for the push; the auth entry may be
		// replaced concurrently once the mutex drops.
		f = c.auth[page].Retain()
	}
	c.mu.Unlock()
	if err != nil || !claimed {
		return err
	}
	defer f.Release()

	if isHome(c.h, desc) {
		c.h.Dir().Update(page, func(e *pagedir.Entry) { e.HomedLocal = true })
		c.gossip(ctx, page, f, stamp, self)
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	resp, err := c.h.Request(ctx, home, &wire.UpdatePush{Page: page, Data: f.Bytes(), Stamp: stamp, Origin: self})
	if err != nil {
		return fmt.Errorf("consistency: eventual push %v: %w", page, err)
	}
	// The home answers with its authoritative state; reconcile in case
	// our push lost to a newer update.
	if auth, ok := resp.(*wire.UpdatePush); ok && auth.Data != nil {
		af := auth.TakeFrame()
		c.mu.Lock()
		_, err = c.applyLocked(page, af, auth.Stamp, auth.Origin)
		c.mu.Unlock()
		af.Release()
	}
	return err
}

// applyPending installs any update parked while the write lock was held.
// When the home applies a parked update it still owes the copyset a
// gossip round, or replicas that missed it would never converge.
func (c *EventualCM) applyPending(ctx context.Context, desc *region.Descriptor, page gaddr.Addr) {
	c.mu.Lock()
	upd, ok := c.pending[page]
	var applied bool
	if ok {
		delete(c.pending, page)
		var err error
		applied, err = c.applyLocked(page, upd.f, upd.stamp, upd.origin)
		if err != nil {
			// The local replica stays a version old; it converges on the
			// next accepted update. Count the miss so operators can see
			// replicas failing to keep up.
			c.applyFailures.Add(1)
		}
	}
	c.mu.Unlock()
	if applied && isHome(c.h, desc) {
		c.gossip(ctx, page, upd.f, upd.stamp, upd.origin)
	}
	if ok && upd.f != nil {
		upd.f.Release()
	}
}

// gossipUpdate is one accepted update bound for the copyset fan-out. The
// frame is borrowed for the duration of gossipBatch.
type gossipUpdate struct {
	page   gaddr.Addr
	f      *frame.Frame
	stamp  int64
	origin ktypes.NodeID
}

// gossip forwards one accepted update to every other replica site via the
// batched fan-out.
func (c *EventualCM) gossip(ctx context.Context, page gaddr.Addr, f *frame.Frame, stamp int64, origin ktypes.NodeID) {
	c.gossipBatch(ctx, []gossipUpdate{{page: page, f: f, stamp: stamp, origin: origin}})
}

// gossipBatch forwards accepted updates to every other replica site: one
// UpdateBatch RPC per destination covering all of that destination's
// pages, instead of one UpdatePush per page per destination. Every item
// shares its update's single refcounted frame across the whole fan-out —
// each SetFrame takes a reference on the same frame, so a push targeting
// several replicas never copies the page contents. Best-effort, as gossip
// has always been: a site that misses an update converges on the next
// accepted one (or stays a version old, which this protocol permits), but
// each missed page counts a push failure so divergence stays observable.
func (c *EventualCM) gossipBatch(ctx context.Context, updates []gossipUpdate) {
	if len(updates) == 0 {
		return
	}
	self := c.h.Self()
	dests := make(map[ktypes.NodeID][]int)
	var order []ktypes.NodeID
	for i := range updates {
		u := &updates[i]
		entry, ok := c.h.Dir().Lookup(u.page)
		if !ok {
			continue
		}
		for _, n := range entry.Copyset {
			if n == self || n == u.origin {
				continue
			}
			if _, seen := dests[n]; !seen {
				order = append(order, n)
			}
			dests[n] = append(dests[n], i)
		}
	}
	fanOut(order, maxReplicateFanout, func(n ktypes.NodeID) {
		idxs := dests[n]
		batch := &wire.UpdateBatch{From: self, Items: make([]wire.UpdateItem, len(idxs))}
		for j, i := range idxs {
			u := &updates[i]
			batch.Items[j] = wire.UpdateItem{Page: u.page, Stamp: u.stamp, Origin: u.origin}
			if u.f != nil {
				batch.Items[j].SetFrame(u.f)
			}
		}
		_, err := c.h.Request(ctx, n, batch)
		batch.ReleaseFrames()
		if err != nil {
			c.pushFailures.Add(uint64(len(idxs)))
		}
	})
}

// AcquireBatch implements CM via the sequential per-page adapter: the
// eventual protocol serves acquires from the local replica, so batching
// buys nothing beyond the rare initial fetches.
func (c *EventualCM) AcquireBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	return acquireSeq(ctx, c, desc, pages, mode)
}

// ReleaseBatch implements CM natively: the batch's dirty pages claim one
// clock stamp, and the pushes travel as one UpdateBatch per destination —
// a single RPC to the home from a replica site, or one gossip batch per
// copyset member at the home — instead of one UpdatePush per page. Local
// locks always release, and parked updates apply exactly as in the
// per-page path.
func (c *EventualCM) ReleaseBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error {
	if len(pages) == 0 {
		return nil
	}
	defer func() {
		for _, p := range pages {
			c.applyPending(ctx, desc, p)
			c.h.Locks().Release(p, mode)
		}
	}()
	if !mode.Writes() {
		return nil
	}
	stamp := c.h.Clock()
	self := c.h.Self()
	var errs []error
	setErr := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(pages))
		}
		errs[i] = err
	}
	idx := make(map[gaddr.Addr]int, len(pages))
	for i, p := range pages {
		idx[p] = i
	}
	var claimed []gossipUpdate
	c.mu.Lock()
	for i, p := range pages {
		if !dirty[p] {
			continue
		}
		ok, err := c.applyLocked(p, nil, stamp, self)
		if err != nil {
			setErr(i, err)
			continue
		}
		if !ok {
			// A newer update won while we were writing; our bytes lose
			// under LWW. Roll the store back to the winning contents.
			if auth, okA := c.auth[p]; okA {
				if serr := c.h.StorePage(p, auth); serr != nil {
					setErr(i, serr)
				}
			}
			continue
		}
		// Pin the claimed bytes for the push; the auth entry may be
		// replaced concurrently once the mutex drops.
		//khazana:frame-owner released after the push/gossip fan-out below
		claimed = append(claimed, gossipUpdate{page: p, f: c.auth[p].Retain(), stamp: stamp, origin: self})
	}
	c.mu.Unlock()
	defer func() {
		for _, u := range claimed {
			u.f.Release()
		}
	}()
	if len(claimed) == 0 {
		return errs
	}
	if isHome(c.h, desc) {
		for _, u := range claimed {
			c.h.Dir().Update(u.page, func(e *pagedir.Entry) { e.HomedLocal = true })
		}
		c.gossipBatch(ctx, claimed)
		return errs
	}
	home, err := homeOf(desc)
	if err != nil {
		for _, u := range claimed {
			setErr(idx[u.page], err)
		}
		return errs
	}
	batch := &wire.UpdateBatch{From: self, Items: make([]wire.UpdateItem, len(claimed))}
	for i, u := range claimed {
		batch.Items[i] = wire.UpdateItem{Page: u.page, Stamp: u.stamp, Origin: u.origin}
		batch.Items[i].SetFrame(u.f)
	}
	resp, err := c.h.Request(ctx, home, batch)
	batch.ReleaseFrames()
	if err != nil {
		err = fmt.Errorf("consistency: eventual push batch (%d pages) to %v: %w", len(claimed), home, err)
		for _, u := range claimed {
			setErr(idx[u.page], err)
		}
		return errs
	}
	// The home answers with its authoritative per-page state; reconcile
	// in case some of our pushes lost to newer updates.
	if auth, ok := resp.(*wire.UpdateBatch); ok {
		for i := range auth.Items {
			it := &auth.Items[i]
			af := it.TakeFrame()
			if af == nil {
				continue
			}
			c.mu.Lock()
			_, aerr := c.applyLocked(it.Page, af, it.Stamp, it.Origin)
			c.mu.Unlock()
			af.Release()
			if aerr != nil {
				if j, known := idx[it.Page]; known {
					setErr(j, aerr)
				}
			}
		}
	}
	return errs
}

// inboundResult is one inbound update's outcome: whether it applied, the
// authoritative stamp/origin after processing, the authoritative bytes
// (retained; release() drops them), and the surviving inbound frame (nil
// when ownership moved to a parked update).
type inboundResult struct {
	applied bool
	stamp   int64
	origin  ktypes.NodeID
	//khazana:frame-owner released by inboundResult.release
	auth *frame.Frame
	//khazana:frame-owner released by inboundResult.release
	inbound *frame.Frame
}

// release drops the result's frame references.
func (r *inboundResult) release() {
	if r.auth != nil {
		r.auth.Release()
		r.auth = nil
	}
	if r.inbound != nil {
		r.inbound.Release()
		r.inbound = nil
	}
}

// applyInbound processes one pushed update: park it under an active local
// write lock, or apply it via last-writer-wins. Ownership of uf transfers
// in; the result's frames transfer back out (release() them when done).
func (c *EventualCM) applyInbound(home bool, page gaddr.Addr, uf *frame.Frame, stamp int64, origin ktypes.NodeID) (inboundResult, error) {
	if home {
		c.h.Dir().Update(page, func(e *pagedir.Entry) {
			e.HomedLocal = true
			e.AddSharer(origin)
		})
	}
	c.mu.Lock()
	var applied bool
	var err error
	if c.h.Locks().WriteLocked(page) {
		// A local writer is active: park the update; it is applied
		// (LWW) when the lock releases.
		if prev, ok := c.pending[page]; !ok || stamp > prev.stamp ||
			(stamp == prev.stamp && origin > prev.origin) {
			if ok && prev.f != nil {
				prev.f.Release()
			}
			//khazana:frame-owner ownership moves to the parked update
			c.pending[page] = &parkedUpdate{f: uf, stamp: stamp, origin: origin}
			uf = nil
		}
	} else {
		applied, err = c.applyLocked(page, uf, stamp, origin)
	}
	entry, _ := c.h.Dir().Lookup(page)
	var af *frame.Frame
	if a, ok := c.auth[page]; ok {
		// Pin the authoritative bytes for the reply while the mutex is
		// still held; no copy is made.
		af = a.Retain()
	}
	c.mu.Unlock()
	return inboundResult{applied: applied, stamp: entry.Stamp, origin: entry.StampNode, auth: af, inbound: uf}, err
}

// Handle implements CM.
func (c *EventualCM) Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.PageFetch:
		if isHome(c.h, desc) {
			c.h.Dir().Update(msg.Page, func(e *pagedir.Entry) {
				e.HomedLocal = true
				e.AddSharer(msg.Requester)
			})
		}
		return handlePageFetch(c.h, msg), nil
	case *wire.UpdatePush:
		home := isHome(c.h, desc)
		// Take ownership of the inbound bytes up front: the transport
		// recycles the message's buffer after this handler returns.
		res, err := c.applyInbound(home, msg.Page, msg.TakeFrame(), msg.Stamp, msg.Origin)
		if err != nil {
			res.release()
			return nil, err
		}
		resp := &wire.UpdatePush{Page: msg.Page, Stamp: res.stamp, Origin: res.origin}
		if res.auth != nil {
			resp.SetFrame(res.auth)
		}
		if home && res.applied {
			c.gossip(ctx, msg.Page, res.inbound, msg.Stamp, msg.Origin)
		}
		res.release()
		return resp, nil
	case *wire.UpdateBatch:
		// A batched push: a replica site releasing several dirty pages at
		// once, another home's gossip round, or a background retry drain.
		// Each item parks or applies exactly as a lone UpdatePush would,
		// and the reply mirrors the batch with the authoritative per-page
		// state so the pusher reconciles losses in one pass.
		home := isHome(c.h, desc)
		resp := &wire.UpdateBatch{From: c.h.Self(), Items: make([]wire.UpdateItem, len(msg.Items))}
		var accepted []gossipUpdate
		for i := range msg.Items {
			it := &msg.Items[i]
			res, err := c.applyInbound(home, it.Page, it.TakeFrame(), it.Stamp, it.Origin)
			if err != nil {
				// Best-effort, like gossip itself: the reply still
				// carries the authoritative state for this page, and the
				// replica converges on the next accepted update.
				c.applyFailures.Add(1)
			}
			resp.Items[i] = wire.UpdateItem{Page: it.Page, Stamp: res.stamp, Origin: res.origin}
			if res.auth != nil {
				resp.Items[i].SetFrame(res.auth)
			}
			if home && res.applied && res.inbound != nil {
				//khazana:frame-owner released after the gossip fan-out below
				accepted = append(accepted, gossipUpdate{page: it.Page, f: res.inbound.Retain(), stamp: it.Stamp, origin: it.Origin})
			}
			res.release()
		}
		if home && len(accepted) > 0 {
			c.gossipBatch(ctx, accepted)
			for _, u := range accepted {
				u.f.Release()
			}
		}
		return resp, nil
	case *wire.SnapshotReqBatch:
		// Any replica serves a snapshot from its local copy: eventual
		// consistency already tolerates temporarily out-of-date data, so
		// a remote cut is no weaker than a remote read.
		return snapshotReply(snapshotFromStore(c.h, desc, msg.Pages), msg.Epoch), nil
	//khazana:wire-default non-CM kinds are unroutable here by design
	default:
		return nil, fmt.Errorf("%w: eventual got %T", ErrUnknownMsg, m)
	}
}

// SnapshotRead implements CM entirely locally: the eventual protocol
// serves reads from whatever replica is at hand (paper §5's
// out-of-date-tolerant clients), so a snapshot is the local store copy
// with no wire traffic at all. The caller's epoch is echoed unchanged.
func (c *EventualCM) SnapshotRead(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64, error) {
	_ = ctx
	return snapshotFromStore(c.h, desc, pages), epoch, nil
}
