package consistency

import (
	"context"
	"sync"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

func lpage(n uint64) gaddr.Addr { return gaddr.FromUint64(n * 0x1000) }

func TestLockModeCompatibility(t *testing.T) {
	tests := []struct {
		name   string
		first  ktypes.LockMode
		second ktypes.LockMode
		admit  bool
	}{
		{"read read", ktypes.LockRead, ktypes.LockRead, true},
		{"read write", ktypes.LockRead, ktypes.LockWrite, false},
		{"read write-shared", ktypes.LockRead, ktypes.LockWriteShared, true},
		{"write read", ktypes.LockWrite, ktypes.LockRead, false},
		{"write write", ktypes.LockWrite, ktypes.LockWrite, false},
		{"write write-shared", ktypes.LockWrite, ktypes.LockWriteShared, false},
		{"write-shared read", ktypes.LockWriteShared, ktypes.LockRead, true},
		{"write-shared write", ktypes.LockWriteShared, ktypes.LockWrite, false},
		{"write-shared write-shared", ktypes.LockWriteShared, ktypes.LockWriteShared, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lt := NewLockTable()
			if err := lt.Acquire(context.Background(), lpage(1), tt.first); err != nil {
				t.Fatal(err)
			}
			if got := lt.TryAcquire(lpage(1), tt.second); got != tt.admit {
				t.Fatalf("TryAcquire(%v after %v) = %v, want %v", tt.second, tt.first, got, tt.admit)
			}
		})
	}
}

func TestLockDifferentPagesIndependent(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()
	if err := lt.Acquire(ctx, lpage(1), ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(ctx, lpage(2), ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
}

func TestLockBlocksUntilRelease(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()
	if err := lt.Acquire(ctx, lpage(1), ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := lt.Acquire(ctx, lpage(1), ktypes.LockRead); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("read acquired while write held")
	case <-time.After(30 * time.Millisecond):
	}
	lt.Release(lpage(1), ktypes.LockWrite)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("read never acquired after release")
	}
}

func TestLockWriteWaitsForAllReaders(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := lt.Acquire(ctx, lpage(1), ktypes.LockRead); err != nil {
			t.Fatal(err)
		}
	}
	acquired := make(chan struct{})
	go func() {
		if err := lt.Acquire(ctx, lpage(1), ktypes.LockWrite); err == nil {
			close(acquired)
		}
	}()
	for i := 0; i < 3; i++ {
		select {
		case <-acquired:
			t.Fatalf("write acquired with %d readers left", 3-i)
		case <-time.After(10 * time.Millisecond):
		}
		lt.Release(lpage(1), ktypes.LockRead)
	}
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("write never acquired")
	}
}

func TestLockContextCancel(t *testing.T) {
	lt := NewLockTable()
	if err := lt.Acquire(context.Background(), lpage(1), ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := lt.Acquire(ctx, lpage(1), ktypes.LockRead); err == nil {
		t.Fatal("acquire should fail on context timeout")
	}
	// Table must stay consistent: release the writer, lock again.
	lt.Release(lpage(1), ktypes.LockWrite)
	if err := lt.Acquire(context.Background(), lpage(1), ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
}

func TestLockInvalidMode(t *testing.T) {
	lt := NewLockTable()
	if lt.TryAcquire(lpage(1), ktypes.LockMode(99)) {
		t.Fatal("invalid mode admitted")
	}
}

func TestLockReleasePanics(t *testing.T) {
	tests := []struct {
		name string
		prep func(lt *LockTable)
		rel  ktypes.LockMode
	}{
		{"never locked", func(*LockTable) {}, ktypes.LockRead},
		{"wrong mode read", func(lt *LockTable) {
			_ = lt.Acquire(context.Background(), lpage(1), ktypes.LockRead)
		}, ktypes.LockWrite},
		{"wrong mode write", func(lt *LockTable) {
			_ = lt.Acquire(context.Background(), lpage(1), ktypes.LockWrite)
		}, ktypes.LockWriteShared},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lt := NewLockTable()
			tt.prep(lt)
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			lt.Release(lpage(1), tt.rel)
		})
	}
}

func TestLockTableCleanup(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()
	_ = lt.Acquire(ctx, lpage(1), ktypes.LockRead)
	_ = lt.Acquire(ctx, lpage(1), ktypes.LockRead)
	if !lt.Held(lpage(1)) || lt.Len() != 1 {
		t.Fatal("lock not tracked")
	}
	lt.Release(lpage(1), ktypes.LockRead)
	if !lt.Held(lpage(1)) {
		t.Fatal("lock dropped with a reader left")
	}
	lt.Release(lpage(1), ktypes.LockRead)
	if lt.Held(lpage(1)) || lt.Len() != 0 {
		t.Fatal("empty lock entry not cleaned up")
	}
}

func TestLockStress(t *testing.T) {
	lt := NewLockTable()
	ctx := context.Background()
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := lt.Acquire(ctx, lpage(1), ktypes.LockWrite); err != nil {
					t.Error(err)
					return
				}
				counter++
				lt.Release(lpage(1), ktypes.LockWrite)
			}
		}()
	}
	wg.Wait()
	if counter != 8*200 {
		t.Fatalf("counter = %d, want %d (write lock not exclusive)", counter, 8*200)
	}
}
