package consistency

import (
	"context"
	"fmt"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/wire"
)

// ReleaseCM implements release consistency (paper §3.3: "for the address
// map tree nodes, we use a release consistent protocol", citing
// Gharachorloo et al.).
//
// Writes are applied to the local replica and propagated to the region's
// home only when the write lock is released; readers validate their cached
// copy against the home's version at acquire time. This gives the RC
// contract — an acquire observes all writes whose releases completed
// before it — without any global lock traffic on the critical path.
type ReleaseCM struct {
	h Host
}

// NewRelease creates the release-consistency manager for a node.
func NewRelease(h Host) *ReleaseCM { return &ReleaseCM{h: h} }

var _ CM = (*ReleaseCM)(nil)

// Protocol implements CM.
func (c *ReleaseCM) Protocol() region.Protocol { return region.Release }

// Acquire implements CM.
func (c *ReleaseCM) Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error {
	if err := c.h.Locks().Acquire(ctx, page, mode); err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if err := c.validate(ctx, desc, page); err != nil {
		c.h.Locks().Release(page, mode)
		return err
	}
	return nil
}

// validate brings the local copy up to date with the home at acquire
// time. Validation is mode-independent: readers and writers alike need a
// current copy before the lock is usable.
func (c *ReleaseCM) validate(ctx context.Context, desc *region.Descriptor, page gaddr.Addr) error {
	if isHome(c.h, desc) {
		c.h.Dir().Update(page, func(e *pagedir.Entry) {
			e.HomedLocal = true
			if e.State == pagedir.Invalid {
				e.State = pagedir.Shared
			}
		})
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	entry, haveEntry := c.h.Dir().Lookup(page)
	haveData := false
	if lf, ok := c.h.LoadPage(page); ok {
		haveData = true
		lf.Release()
	}

	resp, err := c.h.Request(ctx, home, &wire.VersionQuery{Page: page})
	if err != nil {
		return fmt.Errorf("consistency: release validate %v: %w", page, err)
	}
	vi, ok := resp.(*wire.VersionInfo)
	if !ok {
		return fmt.Errorf("consistency: release validate %v: unexpected reply %T", page, resp)
	}
	fresh := haveData && haveEntry && entry.Version >= vi.Version
	if fresh {
		return nil
	}
	fetchResp, err := c.h.Request(ctx, home, &wire.PageFetch{Page: page, Requester: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: release fetch %v: %w", page, err)
	}
	pd, ok := fetchResp.(*wire.PageData)
	if !ok {
		return fmt.Errorf("consistency: release fetch %v: unexpected reply %T", page, fetchResp)
	}
	var f *frame.Frame
	if pd.Found {
		f = pd.TakeFrame()
	}
	if f == nil {
		// Never written: an allocated page reads as zeroes.
		f = zeroFill(desc)
	}
	err = c.h.StorePage(page, f)
	f.Release()
	if err != nil {
		return fmt.Errorf("consistency: release store %v: %w", page, err)
	}
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.State = pagedir.Shared
		e.Version = pd.Version
	})
	return nil
}

// Release implements CM. Dirty contents propagate to the home here — the
// essence of release consistency.
func (c *ReleaseCM) Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error {
	defer c.h.Locks().Release(page, mode)
	if !mode.Writes() || !dirty {
		return nil
	}
	if isHome(c.h, desc) {
		c.h.Dir().Update(page, func(e *pagedir.Entry) {
			e.Version++
			e.HomedLocal = true
		})
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	// The frame stays alive (and its Data view valid) across the RPC.
	f := loadOrZero(c.h, desc, page)
	defer f.Release()
	resp, err := c.h.Request(ctx, home, &wire.UpdatePush{Page: page, Data: f.Bytes(), Origin: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: release push %v: %w", page, err)
	}
	if vi, ok := resp.(*wire.VersionInfo); ok {
		c.h.Dir().Update(page, func(e *pagedir.Entry) { e.Version = vi.Version })
	}
	return nil
}

// SnapshotRead implements CM: the home's store copy is committed by
// construction (dirty data only lands there at release time), so a
// snapshot is one lock-free batch fetch from the home — or a local read
// when this node is the home. The protocol's relaxed semantics carry
// over: the snapshot observes the last released contents.
func (c *ReleaseCM) SnapshotRead(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64, error) {
	if isHome(c.h, desc) {
		return snapshotFromStore(c.h, desc, pages), epoch, nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return nil, 0, err
	}
	return snapshotFromHome(ctx, c.h, desc, home, pages, epoch)
}

// AcquireBatch implements CM via the sequential per-page adapter: release
// consistency has no home-side batch grant, and its acquire path is one
// version check per page.
func (c *ReleaseCM) AcquireBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	return acquireSeq(ctx, c, desc, pages, mode)
}

// ReleaseBatch implements CM natively: the batch's dirty pages travel to
// the home in a single UpdateBatch RPC instead of one UpdatePush each,
// with the per-item reply errors aligned so one failed store queues one
// background retry. Local locks always release.
func (c *ReleaseCM) ReleaseBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error {
	if len(pages) == 0 {
		return nil
	}
	defer func() {
		for _, p := range pages {
			c.h.Locks().Release(p, mode)
		}
	}()
	if !mode.Writes() {
		return nil
	}
	if isHome(c.h, desc) {
		for _, p := range pages {
			if !dirty[p] {
				continue
			}
			c.h.Dir().Update(p, func(e *pagedir.Entry) {
				e.Version++
				e.HomedLocal = true
			})
		}
		return nil
	}
	var dirtyPages []gaddr.Addr
	for _, p := range pages {
		if dirty[p] {
			dirtyPages = append(dirtyPages, p)
		}
	}
	if len(dirtyPages) == 0 {
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return batchErrs(len(pages), err)
	}
	batch := &wire.UpdateBatch{From: c.h.Self(), Items: make([]wire.UpdateItem, len(dirtyPages))}
	var frames []*frame.Frame
	for i, p := range dirtyPages {
		batch.Items[i] = wire.UpdateItem{Page: p, Origin: c.h.Self()}
		// Frames stay referenced until the request (and its marshal)
		// completes, so the views in Data never dangle.
		f := loadOrZero(c.h, desc, p)
		batch.Items[i].Data = f.Bytes()
		//khazana:frame-owner released after the batch RPC below
		frames = append(frames, f)
	}
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	resp, err := c.h.Request(ctx, home, batch)
	if err != nil {
		return batchErrs(len(pages), fmt.Errorf("consistency: release push batch (%d pages) to %v: %w", len(dirtyPages), home, err))
	}
	ub, ok := resp.(*wire.UpdateBatchResp)
	if !ok {
		return batchErrs(len(pages), fmt.Errorf("consistency: release push batch: unexpected reply %T", resp))
	}
	remoteErrs := make(map[gaddr.Addr]string, len(dirtyPages))
	for i, p := range dirtyPages {
		if i < len(ub.Errs) && ub.Errs[i] != "" {
			remoteErrs[p] = ub.Errs[i]
			continue
		}
		if i < len(ub.Versions) {
			v := ub.Versions[i]
			c.h.Dir().Update(p, func(e *pagedir.Entry) { e.Version = v })
		}
	}
	var errs []error
	for i, p := range pages {
		if remote, ok := remoteErrs[p]; ok {
			if errs == nil {
				errs = make([]error, len(pages))
			}
			errs[i] = fmt.Errorf("consistency: release push %v to %v: %s", p, home, remote)
		}
	}
	return errs
}

// Handle implements CM.
func (c *ReleaseCM) Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.VersionQuery:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		entry, ok := c.h.Dir().Lookup(msg.Page)
		if !ok {
			return &wire.VersionInfo{Found: false, Version: 0}, nil
		}
		return &wire.VersionInfo{Found: true, Version: entry.Version}, nil
	case *wire.PageFetch:
		if isHome(c.h, desc) {
			// Track the fetcher so future protocols (and replica
			// maintenance) know who caches the page.
			c.h.Dir().Update(msg.Page, func(e *pagedir.Entry) {
				e.HomedLocal = true
				e.AddSharer(msg.Requester)
			})
		}
		return handlePageFetch(c.h, msg), nil
	case *wire.UpdatePush:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		f := msg.TakeFrame()
		newVersion, err := c.applyPush(msg.Page, f, from)
		if f != nil {
			f.Release()
		}
		if err != nil {
			return nil, err
		}
		return &wire.VersionInfo{Found: true, Version: newVersion}, nil
	case *wire.SnapshotReqBatch:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		// The home's store copy is committed by construction: dirty data
		// only lands here at release time (applyPush), never mid-write.
		return snapshotReply(snapshotFromStore(c.h, desc, msg.Pages), msg.Epoch), nil
	case *wire.UpdateBatch:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		resp := &wire.UpdateBatchResp{
			Errs:     make([]string, len(msg.Items)),
			Versions: make([]uint64, len(msg.Items)),
		}
		for i := range msg.Items {
			it := &msg.Items[i]
			f := it.TakeFrame()
			newVersion, err := c.applyPush(it.Page, f, from)
			if f != nil {
				f.Release()
			}
			if err != nil {
				resp.Errs[i] = err.Error()
				continue
			}
			resp.Versions[i] = newVersion
		}
		return resp, nil
	//khazana:wire-default non-CM kinds are unroutable here by design
	default:
		return nil, fmt.Errorf("%w: release got %T", ErrUnknownMsg, m)
	}
}

// applyPush applies one pushed dirty page at the home — store, bump the
// version, and track the pusher as a copy holder — returning the page's
// new version. The frame is borrowed; nil means the pusher held no data
// (version bump only).
func (c *ReleaseCM) applyPush(page gaddr.Addr, f *frame.Frame, from ktypes.NodeID) (uint64, error) {
	if f != nil {
		if err := c.h.StorePage(page, f); err != nil {
			return 0, err
		}
	}
	var newVersion uint64
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.HomedLocal = true
		e.Version++
		e.State = pagedir.Shared
		e.AddSharer(from)
		newVersion = e.Version
	})
	return newVersion, nil
}
