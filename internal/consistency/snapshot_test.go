package consistency

import (
	"context"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
)

// snapRead performs a snapshot read with a watchdog: the whole point of
// the snapshot path is that it never waits on writers, so a hang here is
// a bug, not a slow test.
func snapRead(t *testing.T, h *testHost, d *region.Descriptor, epoch uint64, pages ...gaddr.Addr) ([]SnapPage, uint64) {
	t.Helper()
	type result struct {
		snaps []SnapPage
		at    uint64
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		snaps, at, err := h.cm(d).SnapshotRead(context.Background(), d, pages, epoch)
		ch <- result{snaps, at, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("%v snapshot read: %v", h.id, r.err)
		}
		return r.snaps, r.at
	case <-time.After(10 * time.Second):
		t.Fatalf("%v snapshot read blocked — the snapshot path must never wait", h.id)
		return nil, 0
	}
}

// releaseSnaps drops the frames a snapshot read handed us.
func releaseSnaps(snaps []SnapPage) {
	for _, sp := range snaps {
		sp.Frame.Release()
	}
}

func TestCREWSnapshotNeverBlocksOnWriter(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	ctx := context.Background()

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "committed-v1") })

	// Node 2 takes the exclusive write lock and mutates its copy but does
	// NOT release: under plain CREW every reader would now wait.
	if err := hosts[1].cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	dirty := snapshot(hosts[1], d, page)
	copy(dirty, "uncommitted!")
	if err := storeBytes(hosts[1], page, dirty); err != nil {
		t.Fatal(err)
	}

	// Snapshot reads — remote (over the wire) and home-local — complete
	// immediately and observe the last committed version.
	for _, h := range []*testHost{hosts[2], hosts[0]} {
		snaps, _ := snapRead(t, h, d, 0, page)
		if got := string(snaps[0].Frame.Bytes()[:12]); got != "committed-v1" {
			t.Errorf("%v snapshot under writer = %q, want committed-v1", h.id, got)
		}
		if snaps[0].Version != 1 {
			t.Errorf("%v snapshot version = %d, want 1", h.id, snaps[0].Version)
		}
		releaseSnaps(snaps)
	}

	if err := hosts[1].cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
		t.Fatal(err)
	}

	// After the release the write is committed and snapshots observe it.
	snaps, _ := snapRead(t, hosts[2], d, 0, page)
	if got := string(snaps[0].Frame.Bytes()[:12]); got != "uncommitted!" {
		t.Errorf("snapshot after release = %q, want uncommitted!", got)
	}
	if snaps[0].Version != 2 {
		t.Errorf("snapshot version after release = %d, want 2", snaps[0].Version)
	}
	releaseSnaps(snaps)
}

func TestCREWSnapshotBypassesLockTable(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	ctx := context.Background()
	crew := hosts[0].cm(d).(*CrewCM)

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "base") })

	// Writer parks on the page; the manager's global lock table would
	// refuse any reader outright.
	if err := hosts[1].cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	if crew.glocks.TryAcquire(page, ktypes.LockRead) {
		t.Fatal("lock-table read admitted under an exclusive writer — test premise broken")
	}

	// The snapshot path still answers, and it never registers in the
	// manager's lock table as a reader.
	snaps, _ := snapRead(t, hosts[2], d, 0, page)
	releaseSnaps(snaps)
	if n := crew.glocks.Readers(page); n != 0 {
		t.Errorf("global lock table shows %d readers after snapshot, want 0", n)
	}

	if err := hosts[1].cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
		t.Fatal(err)
	}
}

func TestCREWSnapshotPinnedEpochStable(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	write := func(s string) {
		lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, s) })
	}
	write("version-1")

	// Pin a cut now (epoch 0 lets the home choose the current one).
	snaps, pinned := snapRead(t, hosts[2], d, 0, page)
	if got := string(snaps[0].Frame.Bytes()[:9]); got != "version-1" {
		t.Fatalf("initial snapshot = %q", got)
	}
	releaseSnaps(snaps)
	if pinned == 0 {
		t.Fatal("home returned epoch 0 for an epoch-0 request")
	}

	write("version-2")
	write("version-3")

	// Re-reading at the pinned epoch still observes version-1: the chain
	// retains it, so the cut is stable across later publishes.
	snaps, at := snapRead(t, hosts[2], d, pinned, page)
	if at != pinned {
		t.Errorf("pinned snapshot returned epoch %d, want %d", at, pinned)
	}
	if got := string(snaps[0].Frame.Bytes()[:9]); got != "version-1" {
		t.Errorf("pinned snapshot = %q, want version-1", got)
	}
	if snaps[0].Version != 1 {
		t.Errorf("pinned snapshot version = %d, want 1", snaps[0].Version)
	}
	releaseSnaps(snaps)

	// A fresh cut observes the newest committed version.
	snaps, _ = snapRead(t, hosts[2], d, 0, page)
	if got := string(snaps[0].Frame.Bytes()[:9]); got != "version-3" {
		t.Errorf("fresh snapshot = %q, want version-3", got)
	}
	releaseSnaps(snaps)
}

func TestCREWSnapshotDropsStaleSpec(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	crew := hosts[1].cm(d).(*CrewCM)

	// Plant a speculative grant at version 1 on node 2.
	if err := storeBytes(hosts[1], page, []byte("spec copy")); err != nil {
		t.Fatal(err)
	}
	hosts[1].dir.Update(page, func(e *pagedir.Entry) {
		e.State = pagedir.Shared
		e.Version = 1
	})
	crew.specMu.Lock()
	crew.spec[page] = 1
	crew.specMu.Unlock()

	// Observing the same version keeps the prefetch.
	crew.dropStaleSpec(page, 1)
	crew.specMu.Lock()
	_, kept := crew.spec[page]
	crew.specMu.Unlock()
	if !kept {
		t.Fatal("spec frame dropped on observing its own version")
	}

	// Observing a newer committed version retires it: the frame goes, the
	// directory entry invalidates, and the next demand read refetches.
	crew.dropStaleSpec(page, 2)
	crew.specMu.Lock()
	_, kept = crew.spec[page]
	crew.specMu.Unlock()
	if kept {
		t.Error("spec entry survived observing a newer version")
	}
	if resident(hosts[1], page) {
		t.Error("stale spec frame still resident")
	}
	if entry, ok := hosts[1].dir.Lookup(page); ok && entry.State != pagedir.Invalid {
		t.Errorf("stale spec page state = %v, want Invalid", entry.State)
	}
}

func TestCREWConsumeSpecRejectsNewerObservedVersion(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	crew := hosts[1].cm(d).(*CrewCM)

	if err := storeBytes(hosts[1], page, []byte("spec copy")); err != nil {
		t.Fatal(err)
	}
	// The spec frame was granted at version 1, but the node has since
	// observed version 2 (say, via an update push): consuming it would
	// serve stale bytes under a fresh read lock.
	hosts[1].dir.Update(page, func(e *pagedir.Entry) {
		e.State = pagedir.Shared
		e.Version = 2
	})
	crew.specMu.Lock()
	crew.spec[page] = 1
	crew.specMu.Unlock()

	consumed, demand := crew.consumeSpec([]gaddr.Addr{page})
	if len(consumed) != 0 {
		t.Errorf("stale spec frame consumed: %v", consumed)
	}
	if len(demand) != 1 || demand[0] != page {
		t.Errorf("stale page not demoted to demand fetch: %v", demand)
	}
}

func TestCREWTrimPublishedSparesPinnedVersions(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	crew := hosts[0].cm(d).(*CrewCM)

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "old-pin") })

	// Pin the old version the way the store reclaimer would see it: a
	// snapshot context holding the frame.
	snaps, _ := snapRead(t, hosts[0], d, 0, page)
	pinned := snaps[0].Frame

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "new-one") })
	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "new-two") })

	// The pressure hook gives back unpinned non-latest versions; the
	// pinned frame and the latest survive.
	if freed := crew.TrimPublished(); freed == 0 {
		t.Error("TrimPublished reclaimed nothing with unpinned old versions retained")
	}
	if got := string(pinned.Bytes()[:7]); got != "old-pin" {
		t.Errorf("pinned frame after trim = %q, want old-pin", got)
	}
	latest, _ := snapRead(t, hosts[0], d, 0, page)
	if got := string(latest[0].Frame.Bytes()[:7]); got != "new-two" {
		t.Errorf("latest after trim = %q, want new-two", got)
	}
	releaseSnaps(latest)
	releaseSnaps(snaps)
}

func TestReleaseSnapshotRead(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "rc-commit") })

	snaps, _ := snapRead(t, hosts[2], d, 0, page)
	if got := string(snaps[0].Frame.Bytes()[:9]); got != "rc-commit" {
		t.Errorf("release snapshot = %q, want rc-commit", got)
	}
	releaseSnaps(snaps)
}

func TestEventualSnapshotReadIsLocal(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	lockWrite(t, hosts[1], d, page, func(b []byte) { copy(b, "ev-data") })
	// Populate node 3's replica, then snapshot it without wire traffic.
	_ = lockRead(t, hosts[2], d, page)

	snaps, _ := snapRead(t, hosts[2], d, 0, page)
	if got := string(snaps[0].Frame.Bytes()[:7]); got != "ev-data" {
		t.Errorf("eventual snapshot = %q, want ev-data", got)
	}
	releaseSnaps(snaps)
}
