package frame

// Chain is a small per-page version chain: the sequence of committed
// frames a home node retains so snapshot readers can pin an immutable
// version while a writer publishes newer ones. Entries are ordered by
// strictly increasing publish epoch; the newest entry is the page's
// latest committed version.
//
// Lifecycle (the multi-version frame pipeline):
//
//   - Publish appends a newly committed frame, consuming the caller's
//     reference, and retires older entries: beyond the retention cap the
//     oldest unpinned entries (refcount 1, held only by the chain) are
//     released back to the pool. A pinned entry survives past the cap
//     until its last snapshot reader unpins it.
//   - At pins the newest entry at or below a snapshot epoch, handing the
//     caller its own reference (a borrow turned obligation).
//   - Trim releases every unpinned non-latest entry, the memory-pressure
//     give-back hook; the latest version is never trimmed.
//
// A Chain is NOT internally synchronized: the owner (the CREW home's
// published-frame table) serializes all calls under its own mutex. The
// refcount==1 reclamation test is race-free under that regime because
// every Retain of a chain entry happens inside At/Latest under the same
// owner mutex.
type Chain struct {
	entries []chainEntry
	retain  int
}

type chainEntry struct {
	//khazana:frame-owner chain holds one reference per entry, dropped on retire/reclaim
	f     *Frame
	epoch uint64
}

// DefaultChainRetain is the default number of versions a chain keeps
// before retiring unpinned old entries on publish.
const DefaultChainRetain = 4

// NewChain returns an empty chain with the default retention cap.
func NewChain() *Chain {
	return &Chain{retain: DefaultChainRetain}
}

// Publish appends f as the newest committed version at the given epoch,
// consuming the caller's reference, then retires old versions: while the
// chain exceeds its retention cap, the oldest entries held only by the
// chain are released. Entries pinned by snapshot readers survive, so the
// chain may temporarily exceed the cap. It returns the number of frames
// reclaimed. Epochs must be strictly increasing per chain.
func (c *Chain) Publish(f *Frame, epoch uint64) int {
	if n := len(c.entries); n > 0 && c.entries[n-1].epoch >= epoch {
		panic("frame: Chain.Publish epoch not increasing")
	}
	c.entries = append(c.entries, chainEntry{f: f, epoch: epoch})
	return c.reclaim(c.retain)
}

// reclaim drops oldest-first unpinned entries while more than keep
// remain, never touching the latest entry, and returns the count freed.
func (c *Chain) reclaim(keep int) int {
	if keep < 1 {
		keep = 1
	}
	freed := 0
	for len(c.entries) > keep {
		dropped := false
		for i := 0; i < len(c.entries)-1; i++ {
			if c.entries[i].f.Refs() != 1 {
				continue
			}
			c.entries[i].f.Release()
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			freed++
			dropped = true
			break
		}
		if !dropped {
			break
		}
	}
	return freed
}

// At returns the newest entry whose epoch is at or below epoch, pinned
// with a reference the caller must Release. When every retained entry is
// newer than epoch (the snapshot's version was already reclaimed), it
// falls back to the oldest retained entry — still a committed version,
// just newer than asked. The second result is the entry's epoch; ok is
// false only when the chain is empty.
func (c *Chain) At(epoch uint64) (f *Frame, at uint64, ok bool) {
	if len(c.entries) == 0 {
		return nil, 0, false
	}
	for i := len(c.entries) - 1; i >= 0; i-- {
		if c.entries[i].epoch <= epoch {
			e := c.entries[i]
			return e.f.Retain(), e.epoch, true
		}
	}
	e := c.entries[0]
	return e.f.Retain(), e.epoch, true
}

// Latest returns the newest committed version, pinned with a reference
// the caller must Release, and its epoch; ok is false when the chain is
// empty.
func (c *Chain) Latest() (f *Frame, epoch uint64, ok bool) {
	if len(c.entries) == 0 {
		return nil, 0, false
	}
	e := c.entries[len(c.entries)-1]
	return e.f.Retain(), e.epoch, true
}

// LatestVersion peeks at the page version stamped on the newest entry
// without pinning it; ok is false when the chain is empty.
func (c *Chain) LatestVersion() (v uint64, ok bool) {
	if len(c.entries) == 0 {
		return 0, false
	}
	return c.entries[len(c.entries)-1].f.Version(), true
}

// Trim releases every unpinned entry except the latest — the memory-
// pressure give-back — and returns the number of frames freed.
func (c *Chain) Trim() int {
	return c.reclaim(1)
}

// Len returns the number of retained versions.
func (c *Chain) Len() int { return len(c.entries) }

// Close releases the chain's reference on every entry, pinned or not,
// and empties the chain. Snapshot readers holding their own references
// keep their frames alive.
func (c *Chain) Close() {
	for _, e := range c.entries {
		e.f.Release()
	}
	c.entries = nil
}
