// Package frame implements the refcounted, pooled page frames that back
// Khazana's zero-copy page-data pipeline. The paper's §3.4 storage
// hierarchy treats node RAM as a cache of global pages; a Frame is one
// such cached page, managed as a first-class resource instead of an
// ad-hoc []byte so that a cache hit is a refcount increment rather than
// an allocation + copy.
//
// Ownership rules (enforced by the khazlint framerelease analyzer):
//
//   - Every call that returns a *Frame (Alloc, AllocZero, Copy, Retain,
//     Exclusive, store Get, message TakeFrame, ...) confers an obligation
//     on the caller to eventually call Release exactly once.
//   - Passing a frame to a function is a borrow: the callee must Retain
//     if it wants to keep the frame beyond the call.
//   - Returning a frame from a function transfers the obligation to the
//     caller. Storing a frame into a struct/map is an ownership transfer
//     and must be annotated //khazana:frame-owner <reason>.
//
// Frames are immutable while shared: a frame whose refcount may exceed 1
// must never be written through Bytes(). A lock-holder that wants to
// mutate calls Exclusive(), which hands back the same frame when the
// caller is the sole owner and a private copy-on-write clone otherwise.
// Because every store keeps its own reference while a frame is
// discoverable, an in-place mutation can only ever happen on a frame no
// other goroutine can reach.
//
// A leaked frame (Release never called) degrades to ordinary garbage:
// the GC reclaims it and the pool merely misses. Releasing a frame that
// is still referenced elsewhere is the dangerous direction — it recycles
// memory under a live reader — so when ownership is unclear, leak.
package frame

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minShift is the smallest pooled class (512 B).
	minShift = 9
	// maxShift is the largest pooled class (1 MiB); bigger frames fall
	// back to the allocator so one giant transfer does not pin memory.
	maxShift   = 20
	numClasses = maxShift - minShift + 1
)

// pools holds one sync.Pool of *Frame per size class. A pooled Frame
// keeps its backing array, so reuse recycles both the header and the
// page memory.
var pools [numClasses]sync.Pool

// classFor returns the pool class index for a frame of n bytes, or -1
// when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxShift {
		return -1
	}
	shift := bits.Len(uint(n - 1))
	if shift < minShift {
		shift = minShift
	}
	return shift - minShift
}

// Frame is one refcounted page buffer.
type Frame struct {
	data    []byte
	class   int32
	refs    atomic.Int32
	version atomic.Uint64
}

// Alloc returns a frame of n bytes with one reference. The contents are
// unspecified (pooled memory is not cleared); callers must overwrite the
// whole frame. Use AllocZero for a zero-filled frame.
func Alloc(n int) *Frame {
	class := classFor(n)
	if class < 0 {
		f := &Frame{data: make([]byte, n), class: -1}
		f.refs.Store(1)
		return f
	}
	if v := pools[class].Get(); v != nil {
		f := v.(*Frame)
		f.data = f.data[:n]
		f.version.Store(0)
		f.refs.Store(1)
		return f
	}
	f := &Frame{data: make([]byte, n, 1<<(class+minShift)), class: int32(class)}
	f.refs.Store(1)
	return f
}

// AllocZero returns a zero-filled frame of n bytes with one reference.
func AllocZero(n int) *Frame {
	f := Alloc(n)
	b := f.data
	for i := range b {
		b[i] = 0
	}
	return f
}

// Copy returns a frame holding a copy of b with one reference.
func Copy(b []byte) *Frame {
	f := Alloc(len(b))
	copy(f.data, b)
	return f
}

// Bytes returns the frame's contents. The view is valid only while the
// caller holds a reference, and must not be written unless the caller
// owns the frame exclusively (see Exclusive).
func (f *Frame) Bytes() []byte { return f.data }

// Len returns the frame's size in bytes.
func (f *Frame) Len() int { return len(f.data) }

// Refs returns the current reference count (for tests and diagnostics).
func (f *Frame) Refs() int32 { return f.refs.Load() }

// Version returns the page version stamped on the frame, when known.
func (f *Frame) Version() uint64 { return f.version.Load() }

// SetVersion stamps the frame with a page version.
func (f *Frame) SetVersion(v uint64) { f.version.Store(v) }

// Retain adds a reference and returns f for chaining. The caller takes
// on an obligation to Release it.
func (f *Frame) Retain() *Frame {
	if f.refs.Add(1) <= 1 {
		panic("frame: Retain of released frame")
	}
	return f
}

// Release drops one reference. When the last reference is dropped the
// frame returns to its size-class pool. Releasing more times than
// retained panics: that is a use-after-free in the making.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("frame: Release of freed frame (refs=%d)", n))
	}
	if f.class >= 0 {
		f.data = f.data[:cap(f.data)]
		pools[f.class].Put(f)
	}
}

// Exclusive returns a frame the caller owns exclusively, consuming the
// caller's reference to f. When the caller is the sole owner it is f
// itself; otherwise it is a private copy (copy-on-write) and the
// caller's reference to the shared original is released. Use it as
//
//	f = f.Exclusive()
//
// before mutating a frame obtained from a shared store.
func (f *Frame) Exclusive() *Frame {
	if f.refs.Load() == 1 {
		return f
	}
	c := Copy(f.data)
	c.version.Store(f.version.Load())
	f.Release()
	return c
}
