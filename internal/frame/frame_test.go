package frame

import (
	"bytes"
	"sync"
	"testing"
)

func TestAllocReleaseReuse(t *testing.T) {
	f := Alloc(4096)
	if f.Len() != 4096 {
		t.Fatalf("Len = %d, want 4096", f.Len())
	}
	if f.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", f.Refs())
	}
	f.Bytes()[0] = 0xAB
	f.Release()

	// The next Alloc of the same class should be able to reuse the
	// frame; either way, the contents are unspecified and the refcount
	// fresh.
	g := Alloc(4096)
	if g.Refs() != 1 {
		t.Fatalf("reused Refs = %d, want 1", g.Refs())
	}
	g.Release()
}

func TestAllocZero(t *testing.T) {
	f := Alloc(1024)
	for i := range f.Bytes() {
		f.Bytes()[i] = 0xFF
	}
	f.Release()
	g := AllocZero(1024)
	defer g.Release()
	if !bytes.Equal(g.Bytes(), make([]byte, 1024)) {
		t.Fatal("AllocZero returned dirty memory")
	}
}

func TestCopy(t *testing.T) {
	src := []byte("hello khazana")
	f := Copy(src)
	defer f.Release()
	if !bytes.Equal(f.Bytes(), src) {
		t.Fatalf("Copy = %q, want %q", f.Bytes(), src)
	}
	src[0] = 'X'
	if f.Bytes()[0] != 'h' {
		t.Fatal("Copy aliases its source")
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {512, 0}, {513, 1}, {4096, 3}, {4097, 4},
		{1 << 20, maxShift - minShift}, {1<<20 + 1, -1}, {0, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestOversizeFrame(t *testing.T) {
	f := Alloc(2 << 20)
	if f.Len() != 2<<20 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Release() // not pooled; must not panic
}

func TestRetainRelease(t *testing.T) {
	f := Alloc(100)
	f.Retain()
	if f.Refs() != 2 {
		t.Fatalf("Refs = %d, want 2", f.Refs())
	}
	f.Release()
	if f.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", f.Refs())
	}
	f.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	f := &Frame{data: make([]byte, 8), class: -1}
	f.refs.Store(1)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	f.Release()
}

func TestVersion(t *testing.T) {
	f := Alloc(64)
	defer f.Release()
	f.SetVersion(42)
	if f.Version() != 42 {
		t.Fatalf("Version = %d, want 42", f.Version())
	}
}

func TestExclusiveSoleOwner(t *testing.T) {
	f := Copy([]byte("data"))
	g := f.Exclusive()
	if g != f {
		t.Fatal("Exclusive copied despite sole ownership")
	}
	g.Release()
}

func TestExclusiveCopyOnWrite(t *testing.T) {
	f := Copy([]byte("original"))
	f.SetVersion(7)
	shared := f.Retain() // a concurrent reader's reference

	g := f.Exclusive()
	if g == shared {
		t.Fatal("Exclusive returned the shared frame")
	}
	if g.Version() != 7 {
		t.Fatalf("COW clone lost version: %d", g.Version())
	}
	copy(g.Bytes(), []byte("mutated!"))
	if string(shared.Bytes()) != "original" {
		t.Fatalf("mutation leaked into shared frame: %q", shared.Bytes())
	}
	g.Release()
	shared.Release()
}

// TestConcurrentRetainRelease hammers the refcount from many goroutines
// under -race: readers retain/inspect/release a shared frame while a
// writer repeatedly takes an exclusive (COW) clone and mutates it.
func TestConcurrentRetainRelease(t *testing.T) {
	base := AllocZero(4096)
	for i := range base.Bytes() {
		base.Bytes()[i] = 1
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := base.Retain()
				b := f.Bytes()
				v := b[0]
				for _, x := range b {
					if x != v {
						t.Error("torn read through shared frame")
						f.Release()
						return
					}
				}
				f.Release()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		// Writer path: take a private clone, mutate, release. The
		// shared frame is never written in place because base always
		// holds a reference.
		w := base.Retain().Exclusive()
		if w == base {
			t.Fatal("Exclusive returned shared base")
		}
		fill := byte(i % 251)
		b := w.Bytes()
		for j := range b {
			b[j] = fill
		}
		w.Release()
	}
	close(stop)
	wg.Wait()
	base.Release()
}

func BenchmarkAllocRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Alloc(4096)
		f.Release()
	}
}

func BenchmarkRetainRelease(b *testing.B) {
	f := Alloc(4096)
	defer f.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Retain()
		f.Release()
	}
}
