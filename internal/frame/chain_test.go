package frame

import (
	"bytes"
	"sync"
	"testing"
)

func publishN(t *testing.T, c *Chain, n int, size int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := Alloc(size)
		for j := range f.Bytes() {
			f.Bytes()[j] = byte(i + 1)
		}
		f.SetVersion(uint64(i + 1))
		c.Publish(f, uint64(i+1))
	}
}

func TestChainPublishAndLatest(t *testing.T) {
	c := NewChain()
	defer c.Close()
	if _, _, ok := c.Latest(); ok {
		t.Fatal("Latest on empty chain reported ok")
	}
	if _, ok := c.LatestVersion(); ok {
		t.Fatal("LatestVersion on empty chain reported ok")
	}
	publishN(t, c, 3, 64)
	f, epoch, ok := c.Latest()
	if !ok || epoch != 3 {
		t.Fatalf("Latest = epoch %d ok=%v, want 3 true", epoch, ok)
	}
	if f.Bytes()[0] != 3 {
		t.Fatalf("Latest bytes = %d, want 3", f.Bytes()[0])
	}
	f.Release()
	if v, ok := c.LatestVersion(); !ok || v != 3 {
		t.Fatalf("LatestVersion = %d ok=%v, want 3 true", v, ok)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestChainAtSnapshotEpochs(t *testing.T) {
	c := NewChain()
	defer c.Close()
	publishN(t, c, 4, 64)
	// Exact epoch.
	f, at, ok := c.At(2)
	if !ok || at != 2 || f.Bytes()[0] != 2 {
		t.Fatalf("At(2) = epoch %d byte %d ok=%v", at, f.Bytes()[0], ok)
	}
	f.Release()
	// Epoch between entries pins the newest at-or-below.
	c2 := NewChain()
	defer c2.Close()
	fa := Copy(bytes.Repeat([]byte{9}, 32))
	c2.Publish(fa, 10)
	fb := Copy(bytes.Repeat([]byte{7}, 32))
	c2.Publish(fb, 20)
	f, at, ok = c2.At(15)
	if !ok || at != 10 || f.Bytes()[0] != 9 {
		t.Fatalf("At(15) = epoch %d byte %d ok=%v, want 10/9/true", at, f.Bytes()[0], ok)
	}
	f.Release()
	// Epoch older than every retained entry falls back to the oldest.
	f, at, ok = c2.At(1)
	if !ok || at != 10 {
		t.Fatalf("At(1) fallback = epoch %d ok=%v, want 10 true", at, ok)
	}
	f.Release()
	// Future epoch pins the latest.
	f, at, ok = c2.At(99)
	if !ok || at != 20 {
		t.Fatalf("At(99) = epoch %d ok=%v, want 20 true", at, ok)
	}
	f.Release()
}

func TestChainReclaimOnPublish(t *testing.T) {
	c := NewChain()
	defer c.Close()
	// DefaultChainRetain versions fit without reclamation.
	publishN(t, c, DefaultChainRetain, 64)
	if c.Len() != DefaultChainRetain {
		t.Fatalf("Len = %d, want %d", c.Len(), DefaultChainRetain)
	}
	// The next publish retires the oldest unpinned entry.
	f := AllocZero(64)
	f.SetVersion(uint64(DefaultChainRetain + 1))
	if freed := c.Publish(f, uint64(DefaultChainRetain+1)); freed != 1 {
		t.Fatalf("Publish freed %d, want 1", freed)
	}
	if c.Len() != DefaultChainRetain {
		t.Fatalf("Len after reclaim = %d, want %d", c.Len(), DefaultChainRetain)
	}
	// The oldest retained epoch is now 2.
	g, at, ok := c.At(1)
	if !ok || at != 2 {
		t.Fatalf("oldest retained epoch = %d ok=%v, want 2 true", at, ok)
	}
	g.Release()
}

func TestChainPinnedEntriesSurviveReclaim(t *testing.T) {
	c := NewChain()
	defer c.Close()
	publishN(t, c, DefaultChainRetain, 64)
	// Pin every retained version, then publish past the cap: nothing is
	// reclaimable, so the chain must grow rather than recycle a pinned
	// frame.
	var pins []*Frame
	for i := 1; i <= DefaultChainRetain; i++ {
		f, at, ok := c.At(uint64(i))
		if !ok || at != uint64(i) {
			t.Fatalf("At(%d) = epoch %d ok=%v", i, at, ok)
		}
		pins = append(pins, f)
	}
	for i := DefaultChainRetain + 1; i <= DefaultChainRetain+4; i++ {
		f := AllocZero(64)
		f.SetVersion(uint64(i))
		c.Publish(f, uint64(i))
	}
	// The unpinned intermediate versions retire, but every pinned entry
	// plus the latest survive, so the chain sits one over its cap.
	if c.Len() != DefaultChainRetain+1 {
		t.Fatalf("Len = %d, want %d while old entries are pinned", c.Len(), DefaultChainRetain+1)
	}
	// Pinned versions still serve their exact epochs and bytes.
	g, at, ok := c.At(1)
	if !ok || at != 1 || g.Bytes()[0] != 1 {
		t.Fatalf("pinned entry gone: At(1) = epoch %d ok=%v", at, ok)
	}
	g.Release()
	for _, f := range pins {
		f.Release()
	}
	// With the pins gone the next publish retires the backlog.
	f := AllocZero(64)
	c.Publish(f, uint64(2*DefaultChainRetain+1))
	if c.Len() != DefaultChainRetain {
		t.Fatalf("Len after unpin = %d, want %d", c.Len(), DefaultChainRetain)
	}
}

func TestChainTrim(t *testing.T) {
	c := NewChain()
	defer c.Close()
	publishN(t, c, 4, 64)
	pinned, _, _ := c.At(2)
	freed := c.Trim()
	// Entries 1 and 3 are unpinned and non-latest; entry 2 is pinned and
	// entry 4 is latest.
	if freed != 2 {
		t.Fatalf("Trim freed %d, want 2", freed)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after Trim = %d, want 2", c.Len())
	}
	if _, _, ok := c.Latest(); !ok {
		t.Fatal("latest entry trimmed")
	} else {
		f, at, _ := c.Latest()
		if at != 4 {
			t.Fatalf("latest epoch after Trim = %d, want 4", at)
		}
		f.Release()
	}
	pinned.Release()
	if freed := c.Trim(); freed != 1 {
		t.Fatalf("second Trim freed %d, want 1", freed)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after full Trim = %d, want 1", c.Len())
	}
}

func TestChainPublishEpochMustIncrease(t *testing.T) {
	c := NewChain()
	defer c.Close()
	c.Publish(AllocZero(32), 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Publish with non-increasing epoch did not panic")
		}
	}()
	c.Publish(AllocZero(32), 5)
}

// TestChainConcurrentReadersVsPublisher drives the chain the way the
// CREW home does — all chain calls serialized by an owner mutex — while
// snapshot readers pin old versions and verify their bytes as a writer
// publishes new ones. Run under -race this proves pinned frames are
// never recycled underneath a reader.
func TestChainConcurrentReadersVsPublisher(t *testing.T) {
	c := NewChain()
	var mu sync.Mutex // the owner mutex (CrewCM.pubMu in production)

	const versions = 200
	const readers = 8

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= versions; i++ {
			f := Alloc(128)
			for j := range f.Bytes() {
				f.Bytes()[j] = byte(i)
			}
			f.SetVersion(uint64(i))
			mu.Lock()
			c.Publish(f, uint64(i))
			mu.Unlock()
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mu.Lock()
				f, at, ok := c.At(uint64(i%versions + 1))
				mu.Unlock()
				if !ok {
					continue
				}
				b := f.Bytes()
				want := byte(at)
				for _, got := range b {
					if got != want {
						t.Errorf("pinned frame at epoch %d mutated: got %d want %d", at, got, want)
						break
					}
				}
				f.Release()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	c.Close()
	mu.Unlock()
}
