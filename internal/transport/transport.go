// Package transport moves wire messages between Khazana daemons.
//
// Two implementations are provided. Network is an in-process simulated
// network with configurable latency, link partitions, and node crashes; it
// still marshals every message through the wire format so protocol code is
// exercised identically to a real deployment. TCP is a real socket
// transport with length-prefixed frames, used by the standalone daemon.
//
// The paper notes that only the messaging layer of Khazana is system
// dependent (§5); this package is that layer.
package transport

import (
	"context"
	"errors"

	"khazana/internal/ktypes"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// Handler processes one inbound request and produces a response.
type Handler func(ctx context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error)

// Transport sends requests to peers and delivers inbound requests to a
// handler.
type Transport interface {
	// Self returns this endpoint's node ID.
	Self() ktypes.NodeID
	// Request sends m to the peer and waits for its response.
	Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error)
	// SetHandler installs the inbound request handler. It must be called
	// before the first request arrives.
	SetHandler(h Handler)
	// Close releases the endpoint.
	Close() error
}

// Errors shared by transport implementations.
var (
	// ErrUnreachable reports that the destination cannot be contacted:
	// unknown, crashed, or partitioned away.
	ErrUnreachable = errors.New("transport: peer unreachable")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrNoHandler reports a request delivered before SetHandler.
	ErrNoHandler = errors.New("transport: no handler installed")
)

// RemoteError carries an error string returned by a peer's handler.
type RemoteError struct {
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// TelemetrySetter is implemented by transports that can report metrics
// (open connections, in-flight requests, frame bytes) to a telemetry
// registry. core.NewNode type-asserts its configured transport against
// this interface and injects the node's registry, so transports built
// before the node exists still end up instrumented.
type TelemetrySetter interface {
	SetTelemetry(reg *telemetry.Registry)
}

// transportMetrics bundles the per-transport instruments. The zero value
// carries nil instruments, which are valid no-ops, so hot paths never
// branch on whether telemetry is enabled.
type transportMetrics struct {
	connsOpen *telemetry.Gauge
	inflight  *telemetry.Gauge
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
}

func newTransportMetrics(reg *telemetry.Registry) *transportMetrics {
	return &transportMetrics{
		connsOpen: reg.Gauge(telemetry.MetricTransportConnsOpen),
		inflight:  reg.Gauge(telemetry.MetricTransportInflight),
		bytesIn:   reg.Counter(telemetry.MetricTransportBytesIn),
		bytesOut:  reg.Counter(telemetry.MetricTransportBytesOut),
	}
}
