package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// wrapTraced wraps m in a trace envelope when ctx carries a span context.
// Untraced requests return m unchanged, so their encoding stays
// byte-identical to the pre-telemetry wire format. Shared by both
// transports.
func wrapTraced(ctx context.Context, m wire.Msg) wire.Msg {
	sc, ok := telemetry.FromContext(ctx)
	if !ok {
		return m
	}
	return &wire.Traced{Trace: uint64(sc.Trace), Span: uint64(sc.Span), Inner: wire.Marshal(m)}
}

// unwrapTraced reverses wrapTraced on the receiving side: it unwraps the
// envelope and returns a context carrying the sender's span context, so
// the handler's spans join the caller's trace. Untraced messages pass
// through with ctx unchanged.
func unwrapTraced(ctx context.Context, m wire.Msg) (context.Context, wire.Msg, error) {
	t, ok := m.(*wire.Traced)
	if !ok {
		return ctx, m, nil
	}
	inner, err := wire.Unmarshal(t.Inner)
	if err != nil {
		return ctx, nil, fmt.Errorf("transport: traced envelope: %w", err)
	}
	ctx = telemetry.ContextWith(ctx, telemetry.SpanContext{
		Trace: telemetry.TraceID(t.Trace),
		Span:  telemetry.SpanID(t.Span),
	})
	return ctx, inner, nil
}

// errBadNodeID rejects attaching the nil node ID.
var errBadNodeID = errors.New("transport: invalid node ID 0")

// Network is an in-process simulated network connecting Khazana daemons in
// one address space. It substitutes for the paper's LAN/WAN testbed:
// per-link latency models slow WAN links (§1: "some or all of the nodes
// may be connected via slow or intermittent WAN links"), and partitions
// and crashes drive the failure-handling experiments (§3.5).
//
// Every request is marshaled to bytes and unmarshaled at the destination,
// so the wire format is exercised exactly as over TCP.
type Network struct {
	mu        sync.RWMutex
	nodes     map[ktypes.NodeID]*inprocEndpoint
	baseDelay time.Duration
	linkDelay map[linkKey]time.Duration
	cut       map[linkKey]bool
	crashed   map[ktypes.NodeID]bool

	requests atomic.Uint64
	bytes    atomic.Uint64
}

type linkKey struct{ a, b ktypes.NodeID }

func link(a, b ktypes.NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// NewNetwork creates an empty simulated network with zero base latency.
func NewNetwork() *Network {
	return &Network{
		nodes:     make(map[ktypes.NodeID]*inprocEndpoint),
		linkDelay: make(map[linkKey]time.Duration),
		cut:       make(map[linkKey]bool),
		crashed:   make(map[ktypes.NodeID]bool),
	}
}

// SetBaseLatency sets the default one-way latency applied to every
// message.
func (n *Network) SetBaseLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.baseDelay = d
}

// SetLinkLatency overrides the one-way latency between a specific pair.
func (n *Network) SetLinkLatency(a, b ktypes.NodeID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDelay[link(a, b)] = d
}

// Partition cuts the link between a and b in both directions.
func (n *Network) Partition(a, b ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[link(a, b)] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, link(a, b))
}

// Isolate cuts every link touching id.
func (n *Network) Isolate(id ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if other != id {
			n.cut[link(id, other)] = true
		}
	}
}

// HealAll removes all partitions.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[linkKey]bool)
}

// Crash makes a node unreachable and unable to send, simulating a process
// failure. The node's handler stops receiving requests.
func (n *Network) Crash(id ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart clears a node's crashed state.
func (n *Network) Restart(id ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id ktypes.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed[id]
}

// Stats returns the cumulative request count and payload bytes moved.
func (n *Network) Stats() (requests, bytes uint64) {
	return n.requests.Load(), n.bytes.Load()
}

// Attach creates a transport endpoint for node id.
func (n *Network) Attach(id ktypes.NodeID) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == ktypes.NilNode {
		return nil, errBadNodeID
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("transport: node %v already attached", id)
	}
	ep := &inprocEndpoint{net: n, id: id}
	ep.tm.Store(&transportMetrics{})
	n.nodes[id] = ep
	return ep, nil
}

// Detach removes a node from the network entirely.
func (n *Network) Detach(id ktypes.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// route resolves delivery parameters for a message from -> to.
func (n *Network) route(from, to ktypes.NodeID) (*inprocEndpoint, time.Duration, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[from] || n.crashed[to] {
		return nil, 0, ErrUnreachable
	}
	if n.cut[link(from, to)] {
		return nil, 0, ErrUnreachable
	}
	ep, ok := n.nodes[to]
	if !ok {
		return nil, 0, ErrUnreachable
	}
	d, ok := n.linkDelay[link(from, to)]
	if !ok {
		d = n.baseDelay
	}
	return ep, d, nil
}

// inprocEndpoint is one node's attachment to the simulated network. Its
// concurrency model matches the mux TCP transport, not the legacy serial
// one: every Request runs on its caller's goroutine and the destination
// handler is invoked directly, so any number of requests are in flight
// to a peer at once — exactly what a shared mux connection provides —
// and unit tests over inproc exercise the same interleavings.
type inprocEndpoint struct {
	net    *Network
	id     ktypes.NodeID
	closed atomic.Bool
	tm     atomic.Pointer[transportMetrics]

	hmu     sync.RWMutex
	handler Handler
}

var _ Transport = (*inprocEndpoint)(nil)

// Self implements Transport.
func (ep *inprocEndpoint) Self() ktypes.NodeID { return ep.id }

// SetTelemetry points the endpoint's instruments at reg; core.NewNode
// injects its registry here just as for the TCP transport.
func (ep *inprocEndpoint) SetTelemetry(reg *telemetry.Registry) {
	ep.tm.Store(newTransportMetrics(reg))
}

func (ep *inprocEndpoint) metrics() *transportMetrics { return ep.tm.Load() }

// SetHandler implements Transport.
func (ep *inprocEndpoint) SetHandler(h Handler) {
	ep.hmu.Lock()
	defer ep.hmu.Unlock()
	ep.handler = h
}

func (ep *inprocEndpoint) getHandler() Handler {
	ep.hmu.RLock()
	defer ep.hmu.RUnlock()
	return ep.handler
}

// Close implements Transport.
func (ep *inprocEndpoint) Close() error {
	ep.closed.Store(true)
	ep.net.Detach(ep.id)
	return nil
}

// Request implements Transport. The message is serialized, carried across
// the simulated link (sleeping the link latency each way), and dispatched
// to the destination handler.
func (ep *inprocEndpoint) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	if ep.closed.Load() {
		return nil, ErrClosed
	}
	dst, delay, err := ep.net.route(ep.id, to)
	if err != nil {
		return nil, err
	}
	if dst.closed.Load() {
		return nil, ErrUnreachable
	}
	tm := ep.metrics()
	tm.inflight.Add(1)
	defer tm.inflight.Add(-1)
	reqBytes := wire.Marshal(wrapTraced(ctx, m))
	ep.net.requests.Add(1)
	ep.net.bytes.Add(uint64(len(reqBytes)))
	tm.bytesOut.Add(uint64(len(reqBytes)))
	dst.metrics().bytesIn.Add(uint64(len(reqBytes)))
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	// Re-check reachability after the flight time: a partition or crash
	// that happened while the message was in flight loses it.
	if _, _, err := ep.net.route(ep.id, to); err != nil {
		return nil, err
	}
	inbound, err := wire.Unmarshal(reqBytes)
	if err != nil {
		return nil, err
	}
	hctx, inbound, err := unwrapTraced(ctx, inbound)
	if err != nil {
		return nil, err
	}
	h := dst.getHandler()
	if h == nil {
		return nil, ErrNoHandler
	}
	dtm := dst.metrics()
	dtm.inflight.Add(1)
	resp, err := h(hctx, ep.id, inbound)
	dtm.inflight.Add(-1)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	respBytes := wire.Marshal(resp)
	// Both messages are fully serialized; frames they still hold can go
	// back to the pool. The order matters: the response may alias the
	// inbound message's frame, so it is marshaled before either recycles.
	wire.Recycle(resp)
	wire.Recycle(inbound)
	ep.net.bytes.Add(uint64(len(respBytes)))
	dtm.bytesOut.Add(uint64(len(respBytes)))
	tm.bytesIn.Add(uint64(len(respBytes)))
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	if _, _, err := ep.net.route(ep.id, to); err != nil {
		return nil, err
	}
	return wire.Unmarshal(respBytes)
}

// sleepCtx sleeps for d unless the context is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
