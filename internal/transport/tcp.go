package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// Frame format, both directions:
//
//	request:  [u32 length][u32 from-node][payload...]
//	response: [u32 length][u8 status][payload-or-error-string...]
//
// status 0 carries a marshaled wire.Msg; status 1 carries an error string
// produced by the remote handler.
const (
	tcpStatusOK  = 0
	tcpStatusErr = 1
	// maxFrame bounds a frame to guard against corrupt length prefixes.
	maxFrame = 1 << 26
	// maxPooledFrame caps the buffers kept in frameBufs; anything larger
	// (a batch grant can reach megabytes) is returned to the allocator so
	// one giant transfer does not pin memory for the connection's life.
	maxPooledFrame = 4 << 20
)

// frameBufs recycles transport frame buffers for both directions of the
// protocol. Pooling is safe because enc's Decoder moves byte and string
// fields out of the input (page payloads land in their own pooled
// refcounted frames), so a decoded wire.Msg never aliases the transport
// buffer it came from. Entries are *[]byte so Put does not allocate.
var frameBufs = sync.Pool{New: func() any { return new([]byte) }}

func getFrameBuf(n int) *[]byte {
	bp := frameBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	frameBufs.Put(bp)
}

// TCP is a socket transport for standalone Khazana daemons. Peers are
// registered with AddPeer; connections are pooled and used serially (one
// in-flight request per pooled connection).
type TCP struct {
	self ktypes.NodeID
	ln   net.Listener

	hmu     sync.RWMutex
	handler Handler

	pmu   sync.RWMutex
	peers map[ktypes.NodeID]string

	cmu    sync.Mutex
	idle   map[ktypes.NodeID][]net.Conn
	served map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
}

var _ Transport = (*TCP)(nil)

// NewTCP starts a TCP endpoint for node self listening on listenAddr
// (e.g. "127.0.0.1:0").
func NewTCP(self ktypes.NodeID, listenAddr string) (*TCP, error) {
	if self == ktypes.NilNode {
		return nil, errBadNodeID
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCP{
		self:   self,
		ln:     ln,
		peers:  make(map[ktypes.NodeID]string),
		idle:   make(map[ktypes.NodeID][]net.Conn),
		served: make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self implements Transport.
func (t *TCP) Self() ktypes.NodeID { return t.self }

// Addr returns the transport's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

func (t *TCP) getHandler() Handler {
	t.hmu.RLock()
	defer t.hmu.RUnlock()
	return t.handler
}

// AddPeer registers the listen address of a peer node.
func (t *TCP) AddPeer(id ktypes.NodeID, addr string) {
	t.pmu.Lock()
	defer t.pmu.Unlock()
	t.peers[id] = addr
}

// PeerAddr returns a peer's registered address.
func (t *TCP) PeerAddr(id ktypes.NodeID) (string, bool) {
	t.pmu.RLock()
	defer t.pmu.RUnlock()
	a, ok := t.peers[id]
	return a, ok
}

// Close implements Transport.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
	}
	close(t.closed)
	err := t.ln.Close()
	t.cmu.Lock()
	for _, conns := range t.idle {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	t.idle = make(map[ktypes.NodeID][]net.Conn)
	for c := range t.served {
		_ = c.Close()
	}
	t.cmu.Unlock()
	t.wg.Wait()
	return err
}

// Request implements Transport.
func (t *TCP) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	conn, err := t.getConn(ctx, to)
	if err != nil {
		return nil, err
	}
	resp, err := t.roundTrip(ctx, conn, m)
	if err != nil {
		_ = conn.Close()
		// A stale pooled connection may have died; retry once on a
		// fresh dial, unless the failure was remote-side or ctx.
		if _, remote := err.(*RemoteError); remote || ctx.Err() != nil {
			return nil, err
		}
		conn, err2 := t.dial(ctx, to)
		if err2 != nil {
			return nil, err
		}
		resp, err = t.roundTrip(ctx, conn, m)
		if err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	t.putConn(to, conn)
	return resp, nil
}

func (t *TCP) roundTrip(ctx context.Context, conn net.Conn, m wire.Msg) (wire.Msg, error) {
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	// Marshal directly into a pooled buffer after the 8-byte header —
	// no intermediate payload allocation. The buffer (possibly grown by
	// the append) goes back to the pool for the next request. Traced
	// requests gain an envelope; untraced ones keep the legacy framing.
	wp := getFrameBuf(8)
	req := wire.MarshalAppend((*wp)[:8], wrapTraced(ctx, m))
	binary.LittleEndian.PutUint32(req[0:4], uint32(len(req)-8+4))
	binary.LittleEndian.PutUint32(req[4:8], uint32(t.self))
	_, err := conn.Write(req)
	*wp = req
	putFrameBuf(wp)
	if err != nil {
		return nil, fmt.Errorf("transport: write request: %w", err)
	}
	rp, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	defer putFrameBuf(rp)
	frame := *rp
	if len(frame) < 1 {
		return nil, fmt.Errorf("transport: empty response frame")
	}
	switch frame[0] {
	case tcpStatusOK:
		return wire.Unmarshal(frame[1:])
	case tcpStatusErr:
		return nil, &RemoteError{Msg: string(frame[1:])}
	default:
		return nil, fmt.Errorf("transport: bad response status %d", frame[0])
	}
}

func (t *TCP) getConn(ctx context.Context, to ktypes.NodeID) (net.Conn, error) {
	t.cmu.Lock()
	conns := t.idle[to]
	if n := len(conns); n > 0 {
		conn := conns[n-1]
		t.idle[to] = conns[:n-1]
		t.cmu.Unlock()
		return conn, nil
	}
	t.cmu.Unlock()
	return t.dial(ctx, to)
}

func (t *TCP) dial(ctx context.Context, to ktypes.NodeID) (net.Conn, error) {
	addr, ok := t.PeerAddr(to)
	if !ok {
		return nil, ErrUnreachable
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %v: %v", ErrUnreachable, to, err)
	}
	return conn, nil
}

func (t *TCP) putConn(to ktypes.NodeID, conn net.Conn) {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	select {
	case <-t.closed:
		_ = conn.Close()
		return
	default:
	}
	if len(t.idle[to]) >= 4 {
		_ = conn.Close()
		return
	}
	t.idle[to] = append(t.idle[to], conn)
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.cmu.Lock()
		t.served[conn] = struct{}{}
		t.cmu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.cmu.Lock()
		delete(t.served, conn)
		t.cmu.Unlock()
		_ = conn.Close()
	}()
	for {
		select {
		case <-t.closed:
			return
		default:
		}
		bp, err := readFrame(conn)
		if err != nil {
			return
		}
		frame := *bp
		if len(frame) < 4 {
			putFrameBuf(bp)
			return
		}
		from := ktypes.NodeID(binary.LittleEndian.Uint32(frame[0:4]))
		msg, err := wire.Unmarshal(frame[4:])
		putFrameBuf(bp)
		if err != nil {
			writeResponse(conn, tcpStatusErr, []byte(err.Error()))
			continue
		}
		hctx, msg, err := unwrapTraced(context.Background(), msg)
		if err != nil {
			writeResponse(conn, tcpStatusErr, []byte(err.Error()))
			continue
		}
		h := t.getHandler()
		if h == nil {
			wire.Recycle(msg)
			writeResponse(conn, tcpStatusErr, []byte(ErrNoHandler.Error()))
			continue
		}
		resp, err := h(hctx, from, msg)
		if err != nil {
			wire.Recycle(msg)
			writeResponse(conn, tcpStatusErr, []byte(err.Error()))
			continue
		}
		// Marshal the response straight into a pooled frame buffer, then
		// recycle both messages' frames. The order matters: the response
		// may alias the inbound message's frame, so serialization
		// completes before either recycles.
		rp := getFrameBuf(5)
		out := wire.MarshalAppend((*rp)[:5], resp)
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(out)-5+1))
		out[4] = tcpStatusOK
		wire.Recycle(resp)
		wire.Recycle(msg)
		_, _ = conn.Write(out)
		*rp = out
		putFrameBuf(rp)
	}
}

func writeResponse(conn net.Conn, status byte, payload []byte) {
	bp := getFrameBuf(5 + len(payload))
	buf := *bp
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)+1))
	buf[4] = status
	copy(buf[5:], payload)
	_, _ = conn.Write(buf)
	putFrameBuf(bp)
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller must release it with putFrameBuf once finished with the slice;
// messages decoded from it may be retained because the decoder moves
// payloads into their own pooled frames.
func readFrame(r io.Reader) (*[]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	bp := getFrameBuf(int(n))
	if _, err := io.ReadFull(r, *bp); err != nil {
		putFrameBuf(bp)
		return nil, err
	}
	return bp, nil
}
