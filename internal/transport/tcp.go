package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// Legacy serial frame format, both directions:
//
//	request:  [u32 length][u32 from-node][payload...]
//	response: [u32 length][u8 status][payload-or-error-string...]
//
// status 0 carries a marshaled wire.Msg; status 1 carries an error string
// produced by the remote handler. One request is in flight per connection
// at a time. The default protocol is the multiplexed framing in mux.go;
// inbound connections are told apart by their first four bytes (a mux
// client leads with muxMagic, which exceeds maxFrame and so can never be
// a legacy length prefix).
const (
	tcpStatusOK  = 0
	tcpStatusErr = 1
	// maxFrame bounds a frame to guard against corrupt length prefixes.
	maxFrame = 1 << 26
	// maxPooledFrame caps the buffers kept in frameBufs; anything larger
	// (a batch grant can reach megabytes) is returned to the allocator so
	// one giant transfer does not pin memory for the connection's life.
	maxPooledFrame = 4 << 20
)

// frameBufs recycles transport frame buffers for both directions of the
// protocol. Pooling is safe because enc's Decoder moves byte and string
// fields out of the input (page payloads land in their own pooled
// refcounted frames), so a decoded wire.Msg never aliases the transport
// buffer it came from. Entries are *[]byte so Put does not allocate.
var frameBufs = sync.Pool{New: func() any { return new([]byte) }}

func getFrameBuf(n int) *[]byte {
	bp := frameBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	frameBufs.Put(bp)
}

// TCP is a socket transport for standalone Khazana daemons. Peers are
// registered with AddPeer. By default outbound requests are multiplexed:
// a small fixed set of shared connections per peer carries any number of
// concurrent in-flight requests (mux.go). WithSerialTransport falls back
// to the legacy pooled serial protocol. Inbound connections auto-detect
// the peer's protocol, so both kinds of client are always served.
type TCP struct {
	self ktypes.NodeID
	ln   net.Listener

	serial       bool
	connsPerPeer int

	hmu     sync.RWMutex
	handler Handler

	pmu   sync.RWMutex
	peers map[ktypes.NodeID]string

	cmu    sync.Mutex
	idle   map[ktypes.NodeID][]net.Conn
	served map[net.Conn]struct{}

	mmu      sync.Mutex
	muxConns map[ktypes.NodeID][]*muxConn
	muxSeq   atomic.Uint32
	muxPick  atomic.Uint32

	tm atomic.Pointer[transportMetrics]

	wg     sync.WaitGroup
	closed chan struct{}
}

var _ Transport = (*TCP)(nil)

// TCPOption configures a TCP transport at construction.
type TCPOption func(*TCP)

// WithSerialTransport selects the legacy serial protocol for outbound
// requests: one in-flight request per pooled connection, framed exactly
// as before multiplexing existed. Inbound connections always auto-detect
// the peer's protocol, so a serial transport still serves mux clients —
// the option exists for mixed-version clusters and A/B benchmarks.
func WithSerialTransport() TCPOption {
	return func(t *TCP) { t.serial = true }
}

// WithConnsPerPeer sets how many shared mux connections fan requests out
// to each peer (default 2). More connections add socket-level
// parallelism; in-flight request concurrency is unbounded either way.
func WithConnsPerPeer(n int) TCPOption {
	return func(t *TCP) {
		if n > 0 {
			t.connsPerPeer = n
		}
	}
}

// NewTCP starts a TCP endpoint for node self listening on listenAddr
// (e.g. "127.0.0.1:0").
func NewTCP(self ktypes.NodeID, listenAddr string, opts ...TCPOption) (*TCP, error) {
	if self == ktypes.NilNode {
		return nil, errBadNodeID
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCP{
		self:         self,
		ln:           ln,
		connsPerPeer: defaultConnsPerPeer,
		peers:        make(map[ktypes.NodeID]string),
		idle:         make(map[ktypes.NodeID][]net.Conn),
		served:       make(map[net.Conn]struct{}),
		muxConns:     make(map[ktypes.NodeID][]*muxConn),
		closed:       make(chan struct{}),
	}
	t.tm.Store(&transportMetrics{})
	for _, opt := range opts {
		opt(t)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self implements Transport.
func (t *TCP) Self() ktypes.NodeID { return t.self }

// Addr returns the transport's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetTelemetry points the transport's instruments at reg. core.NewNode
// injects its registry here; safe to call while traffic is flowing, and
// a nil registry yields no-op instruments.
func (t *TCP) SetTelemetry(reg *telemetry.Registry) {
	t.tm.Store(newTransportMetrics(reg))
}

func (t *TCP) metrics() *transportMetrics { return t.tm.Load() }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	t.handler = h
}

func (t *TCP) getHandler() Handler {
	t.hmu.RLock()
	defer t.hmu.RUnlock()
	return t.handler
}

// AddPeer registers the listen address of a peer node.
func (t *TCP) AddPeer(id ktypes.NodeID, addr string) {
	t.pmu.Lock()
	defer t.pmu.Unlock()
	t.peers[id] = addr
}

// PeerAddr returns a peer's registered address.
func (t *TCP) PeerAddr(id ktypes.NodeID) (string, bool) {
	t.pmu.RLock()
	defer t.pmu.RUnlock()
	a, ok := t.peers[id]
	return a, ok
}

// Close implements Transport.
func (t *TCP) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
	}
	close(t.closed)
	err := t.ln.Close()
	t.cmu.Lock()
	idle := t.idle
	t.idle = make(map[ktypes.NodeID][]net.Conn)
	for c := range t.served {
		_ = c.Close()
	}
	t.cmu.Unlock()
	for _, conns := range idle {
		for _, c := range conns {
			t.closeConn(c)
		}
	}
	t.mmu.Lock()
	var mcs []*muxConn
	for _, slots := range t.muxConns {
		for _, mc := range slots {
			if mc != nil {
				mcs = append(mcs, mc)
			}
		}
	}
	t.muxConns = make(map[ktypes.NodeID][]*muxConn)
	t.mmu.Unlock()
	for _, mc := range mcs {
		mc.fail(ErrClosed)
	}
	t.wg.Wait()
	return err
}

// Request implements Transport.
func (t *TCP) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	select {
	case <-t.closed:
		return nil, ErrClosed
	default:
	}
	tm := t.metrics()
	tm.inflight.Add(1)
	defer tm.inflight.Add(-1)
	if t.serial {
		return t.serialRequest(ctx, to, m)
	}
	return t.muxRequest(ctx, to, m)
}

// serialRequest is the legacy one-request-per-connection client path.
func (t *TCP) serialRequest(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	conn, err := t.getConn(ctx, to)
	if err != nil {
		return nil, err
	}
	resp, err := t.roundTrip(ctx, conn, m)
	if err != nil {
		t.closeConn(conn)
		// A stale pooled connection may have died; retry once on a
		// fresh dial, unless the failure was remote-side or ctx.
		if _, remote := err.(*RemoteError); remote || ctx.Err() != nil {
			return nil, err
		}
		conn, err2 := t.dial(ctx, to)
		if err2 != nil {
			return nil, err
		}
		resp, err = t.roundTrip(ctx, conn, m)
		if err != nil {
			t.closeConn(conn)
			return nil, err
		}
	}
	t.putConn(to, conn)
	return resp, nil
}

func (t *TCP) roundTrip(ctx context.Context, conn net.Conn, m wire.Msg) (wire.Msg, error) {
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	tm := t.metrics()
	// Marshal directly into a pooled buffer after the 8-byte header —
	// no intermediate payload allocation. The buffer (possibly grown by
	// the append) goes back to the pool for the next request. Traced
	// requests gain an envelope; untraced ones keep the legacy framing.
	wp := getFrameBuf(8)
	req := wire.MarshalAppend((*wp)[:8], wrapTraced(ctx, m))
	binary.LittleEndian.PutUint32(req[0:4], uint32(len(req)-8+4))
	binary.LittleEndian.PutUint32(req[4:8], uint32(t.self))
	n, err := conn.Write(req)
	*wp = req
	putFrameBuf(wp)
	if err != nil {
		return nil, fmt.Errorf("transport: write request: %w", err)
	}
	tm.bytesOut.Add(uint64(n))
	rp, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	defer putFrameBuf(rp)
	tm.bytesIn.Add(uint64(len(*rp)) + 4)
	frame := *rp
	if len(frame) < 1 {
		return nil, fmt.Errorf("transport: empty response frame")
	}
	switch frame[0] {
	case tcpStatusOK:
		return wire.Unmarshal(frame[1:])
	case tcpStatusErr:
		return nil, &RemoteError{Msg: string(frame[1:])}
	default:
		return nil, fmt.Errorf("transport: bad response status %d", frame[0])
	}
}

func (t *TCP) getConn(ctx context.Context, to ktypes.NodeID) (net.Conn, error) {
	t.cmu.Lock()
	conns := t.idle[to]
	if n := len(conns); n > 0 {
		conn := conns[n-1]
		t.idle[to] = conns[:n-1]
		t.cmu.Unlock()
		return conn, nil
	}
	t.cmu.Unlock()
	return t.dial(ctx, to)
}

func (t *TCP) dial(ctx context.Context, to ktypes.NodeID) (net.Conn, error) {
	addr, ok := t.PeerAddr(to)
	if !ok {
		return nil, ErrUnreachable
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %v: %v", ErrUnreachable, to, err)
	}
	t.metrics().connsOpen.Add(1)
	return conn, nil
}

// closeConn closes a client-side dialed connection and drops it from the
// open-connections gauge. Every connection returned by dial must pass
// through exactly one closeConn (mux connections route here via fail).
func (t *TCP) closeConn(conn net.Conn) {
	_ = conn.Close()
	t.metrics().connsOpen.Add(-1)
}

func (t *TCP) putConn(to ktypes.NodeID, conn net.Conn) {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	select {
	case <-t.closed:
		t.closeConn(conn)
		return
	default:
	}
	if len(t.idle[to]) >= 4 {
		t.closeConn(conn)
		return
	}
	t.idle[to] = append(t.idle[to], conn)
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.metrics().connsOpen.Add(1)
		t.cmu.Lock()
		t.served[conn] = struct{}{}
		t.cmu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn sniffs the protocol from the connection's first four bytes
// and dispatches: muxMagic can never be a legacy length prefix (it
// exceeds maxFrame), so mux and serial clients are told apart with no
// handshake round-trip and no configuration.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.cmu.Lock()
		delete(t.served, conn)
		t.cmu.Unlock()
		t.closeConn(conn)
	}()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	first := binary.LittleEndian.Uint32(hdr[:])
	if first == muxMagic {
		t.serveMux(conn)
		return
	}
	t.serveSerial(conn, first)
}

// serveSerial serves one legacy connection: requests are handled one at
// a time in arrival order. firstLen is the already-sniffed length prefix
// of the first frame.
func (t *TCP) serveSerial(conn net.Conn, firstLen uint32) {
	frameLen := firstLen
	for {
		select {
		case <-t.closed:
			return
		default:
		}
		if frameLen == 0 || frameLen > maxFrame {
			return
		}
		if !t.serveSerialOne(conn, frameLen) {
			return
		}
		var err error
		frameLen, err = readFrameLen(conn)
		if err != nil {
			return
		}
	}
}

// serveSerialOne reads and answers one serial request. It returns false
// when the connection must be dropped — including after any failed
// response write: a partial write leaves the stream desynced from the
// framing, so every write error is fatal for the connection.
func (t *TCP) serveSerialOne(conn net.Conn, frameLen uint32) bool {
	tm := t.metrics()
	bp, err := readFrameBody(conn, frameLen)
	if err != nil {
		return false
	}
	tm.bytesIn.Add(uint64(len(*bp)) + 4)
	frame := *bp
	if len(frame) < 4 {
		putFrameBuf(bp)
		return false
	}
	from := ktypes.NodeID(binary.LittleEndian.Uint32(frame[0:4]))
	msg, err := wire.Unmarshal(frame[4:])
	putFrameBuf(bp)
	if err != nil {
		return t.writeResponse(conn, tcpStatusErr, []byte(err.Error())) == nil
	}
	hctx, msg, err := unwrapTraced(context.Background(), msg)
	if err != nil {
		return t.writeResponse(conn, tcpStatusErr, []byte(err.Error())) == nil
	}
	h := t.getHandler()
	if h == nil {
		wire.Recycle(msg)
		return t.writeResponse(conn, tcpStatusErr, []byte(ErrNoHandler.Error())) == nil
	}
	tm.inflight.Add(1)
	resp, err := h(hctx, from, msg)
	tm.inflight.Add(-1)
	if err != nil {
		wire.Recycle(msg)
		return t.writeResponse(conn, tcpStatusErr, []byte(err.Error())) == nil
	}
	// Marshal the response straight into a pooled frame buffer, then
	// recycle both messages' frames. The order matters: the response
	// may alias the inbound message's frame, so serialization
	// completes before either recycles.
	rp := getFrameBuf(5)
	out := wire.MarshalAppend((*rp)[:5], resp)
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(out)-5+1))
	out[4] = tcpStatusOK
	wire.Recycle(resp)
	wire.Recycle(msg)
	n, werr := conn.Write(out)
	*rp = out
	putFrameBuf(rp)
	if werr != nil {
		return false
	}
	tm.bytesOut.Add(uint64(n))
	return true
}

// writeResponse sends a serial response frame and reports the write
// error so callers can drop a desynced connection.
func (t *TCP) writeResponse(conn net.Conn, status byte, payload []byte) error {
	bp := getFrameBuf(5 + len(payload))
	buf := *bp
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)+1))
	buf[4] = status
	copy(buf[5:], payload)
	n, err := conn.Write(buf)
	putFrameBuf(bp)
	if err != nil {
		return err
	}
	t.metrics().bytesOut.Add(uint64(n))
	return nil
}

// readFrameLen reads and bounds-checks one length prefix.
func readFrameLen(r io.Reader) (uint32, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return 0, fmt.Errorf("transport: bad frame length %d", n)
	}
	return n, nil
}

// readFrameBody reads a frame's n payload bytes into a pooled buffer.
func readFrameBody(r io.Reader, n uint32) (*[]byte, error) {
	bp := getFrameBuf(int(n))
	if _, err := io.ReadFull(r, *bp); err != nil {
		putFrameBuf(bp)
		return nil, err
	}
	return bp, nil
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller must release it with putFrameBuf once finished with the slice;
// messages decoded from it may be retained because the decoder moves
// payloads into their own pooled frames.
func readFrame(r io.Reader) (*[]byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, err
	}
	return readFrameBody(r, n)
}
