package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// TestSerialClientAgainstAutoDetectServer pins the mixed-version story:
// a legacy client built with WithSerialTransport talks to a default
// (mux-capable) server, which must sniff the first frame and fall back
// to the serial protocol for that connection.
func TestSerialClientAgainstAutoDetectServer(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0", WithSerialTransport())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	b.SetHandler(echoHandler(2))
	for i := 0; i < 3; i++ {
		resp, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pong, ok := resp.(*wire.Pong); !ok || pong.From != 2 {
			t.Fatalf("resp = %+v", resp)
		}
	}
}

// TestSerialWireFormatFrozen proves the serial protocol is byte-identical
// to the pre-mux format by speaking it with a hand-rolled TCP server that
// shares no framing code with the transport:
//
//	request:  [u32 length = len(payload)+4][u32 from][payload]
//	response: [u32 length = len(payload)+1][u8 status][payload]
//
// A mixed-version cluster depends on this layout never drifting.
func TestSerialWireFormatFrozen(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	wantPayload := wire.Marshal(&wire.Ping{From: 1})
	serverErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		var hdr [8]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			serverErr <- err
			return
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		from := binary.LittleEndian.Uint32(hdr[4:8])
		if want := uint32(len(wantPayload) + 4); length != want {
			serverErr <- fmt.Errorf("request length prefix = %d, want %d", length, want)
			return
		}
		if from != 1 {
			serverErr <- fmt.Errorf("request from = %d, want 1", from)
			return
		}
		payload := make([]byte, length-4)
		if _, err := io.ReadFull(conn, payload); err != nil {
			serverErr <- err
			return
		}
		if !bytes.Equal(payload, wantPayload) {
			serverErr <- fmt.Errorf("request payload differs from wire.Marshal output")
			return
		}
		// Hand-build the frozen response frame: [len][status=0][payload].
		pong := wire.Marshal(&wire.Pong{From: 2})
		resp := make([]byte, 5+len(pong))
		binary.LittleEndian.PutUint32(resp[0:4], uint32(len(pong)+1))
		resp[4] = 0
		copy(resp[5:], pong)
		if _, err := conn.Write(resp); err != nil {
			serverErr <- err
			return
		}
		serverErr <- nil
	}()

	a, err := NewTCP(1, "127.0.0.1:0", WithSerialTransport())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(2, ln.Addr().String())
	resp, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(*wire.Pong); !ok || pong.From != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestMuxManyGoroutinesOneConn hammers a single shared mux connection
// from hundreds of goroutines; run under -race it checks the demux
// bookkeeping (pending shards, channel pool, frame pool) for data races.
func TestMuxManyGoroutinesOneConn(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0", WithConnsPerPeer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	b.SetHandler(echoHandler(2))

	const goroutines, perG = 300, 10
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				resp, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
				if err != nil {
					errs[i] = err
					return
				}
				if pong, ok := resp.(*wire.Pong); !ok || pong.From != 2 {
					errs[i] = fmt.Errorf("resp = %+v", resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// TestMuxMidStreamConnDeath kills the shared connection while many
// requests are in flight: every caller must get an error — promptly, not
// by hanging until some timeout — and the blocked server handlers must
// not wedge the transports' shutdown.
func TestMuxMidStreamConnDeath(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0", WithConnsPerPeer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())

	const inflight = 100
	var arrived atomic.Int32
	release := make(chan struct{})
	b.SetHandler(func(_ context.Context, _ ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
		arrived.Add(1)
		<-release
		return m, nil
	})

	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
			results <- err
		}()
	}
	// Wait until every request is parked inside a server handler.
	deadline := time.Now().Add(10 * time.Second)
	for arrived.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests arrived", arrived.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the server. Close blocks until handlers drain, so run it on
	// the side and release the handlers once every caller has errored.
	closed := make(chan struct{})
	go func() {
		_ = b.Close()
		close(closed)
	}()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-results:
			if err == nil {
				t.Fatal("in-flight request returned success after connection death")
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d still hanging after connection death", i)
		}
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close did not finish after handlers released")
	}

	// The transport must recover: a fresh peer on the same ID works.
	c, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetHandler(echoHandler(2))
	a.AddPeer(2, c.Addr())
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatalf("request after re-dial: %v", err)
	}
}

// TestMuxContextCancelInFlight cancels a caller while its request is
// parked in a server handler; the caller must return promptly with the
// context error and the connection must keep serving other requests.
func TestMuxContextCancelInFlight(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0", WithConnsPerPeer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())

	release := make(chan struct{})
	b.SetHandler(func(_ context.Context, _ ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
		if _, ok := m.(*wire.Ping); ok {
			<-release
		}
		return m, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Request(ctx, 2, &wire.Ping{From: 1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not return")
	}
	// The connection is still live for other traffic.
	if _, err := a.Request(context.Background(), 2, &wire.Ack{}); err != nil {
		t.Fatalf("request after cancel: %v", err)
	}
	close(release)
}

// FuzzMuxFrameRoundTrip round-trips the mux frame layouts through the
// transport's real reader:
//
//	request:  [u32 length][u32 reqID][payload...]
//	response: [u32 length][u32 reqID][u8 status][payload...]
//
// with length counting everything after itself, exactly as roundTrip and
// handleMux encode them.
func FuzzMuxFrameRoundTrip(f *testing.F) {
	f.Add(uint32(1), byte(0), []byte("payload"))
	f.Add(uint32(0xffffffff), byte(1), []byte{})
	f.Add(uint32(7), byte(2), bytes.Repeat([]byte{0xa5}, 1000))
	f.Fuzz(func(t *testing.T, id uint32, status byte, payload []byte) {
		// Request layout.
		req := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(req[0:4], uint32(len(req)-4))
		binary.LittleEndian.PutUint32(req[4:8], id)
		copy(req[8:], payload)
		bp, err := readFrame(bytes.NewReader(req))
		if err != nil {
			t.Fatalf("request readFrame: %v", err)
		}
		frame := *bp
		if got := binary.LittleEndian.Uint32(frame[0:4]); got != id {
			t.Fatalf("request id = %d, want %d", got, id)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatal("request payload differs after round trip")
		}
		putFrameBuf(bp)

		// Response layout.
		resp := make([]byte, 9+len(payload))
		binary.LittleEndian.PutUint32(resp[0:4], uint32(len(resp)-4))
		binary.LittleEndian.PutUint32(resp[4:8], id)
		resp[8] = status
		copy(resp[9:], payload)
		bp, err = readFrame(bytes.NewReader(resp))
		if err != nil {
			t.Fatalf("response readFrame: %v", err)
		}
		frame = *bp
		if got := binary.LittleEndian.Uint32(frame[0:4]); got != id {
			t.Fatalf("response id = %d, want %d", got, id)
		}
		if frame[4] != status {
			t.Fatalf("response status = %d, want %d", frame[4], status)
		}
		if !bytes.Equal(frame[5:], payload) {
			t.Fatal("response payload differs after round trip")
		}
		putFrameBuf(bp)
	})
}

// FuzzSerialFrameRoundTrip pins the legacy serial layouts against the
// transport's reader the same way: arbitrary payloads framed by hand in
// the frozen pre-mux format must come back intact.
func FuzzSerialFrameRoundTrip(f *testing.F) {
	f.Add(uint32(1), byte(0), []byte("payload"))
	f.Add(uint32(99), byte(1), []byte{})
	f.Fuzz(func(t *testing.T, from uint32, status byte, payload []byte) {
		// Request: [u32 len = payload+4][u32 from][payload].
		req := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(req[0:4], uint32(len(payload)+4))
		binary.LittleEndian.PutUint32(req[4:8], from)
		copy(req[8:], payload)
		bp, err := readFrame(bytes.NewReader(req))
		if err != nil {
			t.Fatalf("request readFrame: %v", err)
		}
		frame := *bp
		if got := binary.LittleEndian.Uint32(frame[0:4]); got != from {
			t.Fatalf("request from = %d, want %d", got, from)
		}
		if !bytes.Equal(frame[4:], payload) {
			t.Fatal("request payload differs after round trip")
		}
		putFrameBuf(bp)

		// Response: [u32 len = payload+1][u8 status][payload].
		resp := make([]byte, 5+len(payload))
		binary.LittleEndian.PutUint32(resp[0:4], uint32(len(payload)+1))
		resp[4] = status
		copy(resp[5:], payload)
		bp, err = readFrame(bytes.NewReader(resp))
		if err != nil {
			t.Fatalf("response readFrame: %v", err)
		}
		frame = *bp
		if frame[0] != status {
			t.Fatalf("response status = %d, want %d", frame[0], status)
		}
		if !bytes.Equal(frame[1:], payload) {
			t.Fatal("response payload differs after round trip")
		}
		putFrameBuf(bp)
	})
}
