package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// echoHandler answers Ping with Pong and echoes everything else.
func echoHandler(self ktypes.NodeID) Handler {
	return func(_ context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
		if _, ok := m.(*wire.Ping); ok {
			return &wire.Pong{From: self}, nil
		}
		return m, nil
	}
}

func TestInprocRequestResponse(t *testing.T) {
	net := NewNetwork()
	t1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	t2.SetHandler(echoHandler(2))

	resp, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1})
	if err != nil {
		t.Fatal(err)
	}
	pong, ok := resp.(*wire.Pong)
	if !ok || pong.From != 2 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInprocAttachValidation(t *testing.T) {
	net := NewNetwork()
	if _, err := net.Attach(0); err == nil {
		t.Fatal("attaching node 0 should fail")
	}
	if _, err := net.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(1); err == nil {
		t.Fatal("duplicate attach should fail")
	}
}

func TestInprocUnknownPeer(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	_, err := t1.Request(context.Background(), 9, &wire.Ping{From: 1})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocNoHandler(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	_, _ = net.Attach(2)
	_, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1})
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocPartitionAndHeal(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))

	net.Partition(1, 2)
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned err = %v", err)
	}
	net.Heal(1, 2)
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatalf("healed err = %v", err)
	}
}

func TestInprocIsolateAndHealAll(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t3, _ := net.Attach(3)
	t2.SetHandler(echoHandler(2))
	t3.SetHandler(echoHandler(3))

	net.Isolate(1)
	for _, to := range []ktypes.NodeID{2, 3} {
		if _, err := t1.Request(context.Background(), to, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("isolated request to %v: %v", to, err)
		}
	}
	// Other links unaffected.
	t3.SetHandler(echoHandler(3))
	if _, err := t2.Request(context.Background(), 3, &wire.Ping{From: 2}); err != nil {
		t.Fatalf("2->3 should work: %v", err)
	}
	net.HealAll()
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
}

func TestInprocCrashRestart(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))

	net.Crash(2)
	if !net.Crashed(2) {
		t.Fatal("node 2 should be crashed")
	}
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("crashed err = %v", err)
	}
	// A crashed node cannot send either.
	net.Restart(2)
	net.Crash(1)
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("crashed sender err = %v", err)
	}
	net.Restart(1)
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}

func TestInprocLatency(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))
	net.SetBaseLatency(10 * time.Millisecond)

	start := time.Now()
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 20ms (two one-way hops)", elapsed)
	}
}

func TestInprocLinkLatencyOverride(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t3, _ := net.Attach(3)
	t2.SetHandler(echoHandler(2))
	t3.SetHandler(echoHandler(3))
	net.SetBaseLatency(1 * time.Millisecond)
	net.SetLinkLatency(1, 3, 20*time.Millisecond) // slow WAN link

	start := time.Now()
	if _, err := t1.Request(context.Background(), 3, &wire.Ping{From: 1}); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(start)
	start = time.Now()
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)
	if slow < 40*time.Millisecond {
		t.Fatalf("WAN link took %v, want >= 40ms", slow)
	}
	if fast >= slow {
		t.Fatalf("LAN (%v) should be faster than WAN (%v)", fast, slow)
	}
}

func TestInprocContextCancel(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))
	net.SetBaseLatency(time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := t1.Request(ctx, 2, &wire.Ping{From: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocHandlerError(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(func(context.Context, ktypes.NodeID, wire.Msg) (wire.Msg, error) {
		return nil, fmt.Errorf("handler exploded")
	})
	_, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "handler exploded" {
		t.Fatalf("err = %v", err)
	}
}

func TestInprocClosedEndpoint(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed sender err = %v", err)
	}
	// Requests to a closed endpoint fail too.
	t3, _ := net.Attach(3)
	_ = t2.Close()
	if _, err := t3.Request(context.Background(), 2, &wire.Ping{From: 3}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("closed target err = %v", err)
	}
}

func TestInprocStats(t *testing.T) {
	net := NewNetwork()
	t1, _ := net.Attach(1)
	t2, _ := net.Attach(2)
	t2.SetHandler(echoHandler(2))
	for i := 0; i < 5; i++ {
		if _, err := t1.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
			t.Fatal(err)
		}
	}
	reqs, bytes := net.Stats()
	if reqs != 5 || bytes == 0 {
		t.Fatalf("stats = %d reqs, %d bytes", reqs, bytes)
	}
}

func TestInprocConcurrentRequests(t *testing.T) {
	net := NewNetwork()
	server, _ := net.Attach(1)
	var counter sync.Map
	server.SetHandler(func(_ context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
		counter.Store(from, true)
		return &wire.Pong{From: 1}, nil
	})
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		id := ktypes.NodeID(i + 2)
		tr, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := tr.Request(context.Background(), 1, &wire.Ping{From: id}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// --- TCP transport ----------------------------------------------------------

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestTCPRequestResponse(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(echoHandler(2))
	resp, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
	if err != nil {
		t.Fatal(err)
	}
	pong, ok := resp.(*wire.Pong)
	if !ok || pong.From != 2 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(echoHandler(2))
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i)
	}
	resp, err := a.Request(context.Background(), 2, &wire.PageData{Found: true, Data: data, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, ok := resp.(*wire.PageData)
	if !ok || len(pd.Data) != len(data) {
		t.Fatalf("resp = %T len %d", resp, len(pd.Data))
	}
	for i := range data {
		if pd.Data[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestTCPFromIdentityPropagates(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan ktypes.NodeID, 1)
	b.SetHandler(func(_ context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
		got <- from
		return &wire.Ack{}, nil
	})
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatal(err)
	}
	if from := <-got; from != 1 {
		t.Fatalf("from = %v", from)
	}
}

func TestTCPHandlerError(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(func(context.Context, ktypes.NodeID, wire.Msg) (wire.Msg, error) {
		return nil, fmt.Errorf("nope")
	})
	_, err := a.Request(context.Background(), 2, &wire.Ping{From: 1})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "nope" {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if _, err := a.Request(context.Background(), 99, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPPeerDown(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer(2, "127.0.0.1:1") // nothing listening
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConnReuseAndConcurrency(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(echoHandler(2))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPSurvivesPeerRestart(t *testing.T) {
	a, err := NewTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(echoHandler(2))
	a.AddPeer(2, b.Addr())
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatal(err)
	}
	// Restart b on the same address; a's pooled connection is now dead and
	// must be replaced transparently.
	addr := b.Addr()
	_ = b.Close()
	b2, err := NewTCP(2, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b2.SetHandler(echoHandler(2))
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}

func TestTCPClosedTransport(t *testing.T) {
	a, b := newTCPPair(t)
	b.SetHandler(echoHandler(2))
	_ = a.Close()
	if _, err := a.Request(context.Background(), 2, &wire.Ping{From: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPContextDeadline(t *testing.T) {
	a, b := newTCPPair(t)
	block := make(chan struct{})
	b.SetHandler(func(context.Context, ktypes.NodeID, wire.Msg) (wire.Msg, error) {
		<-block
		return &wire.Ack{}, nil
	})
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Request(ctx, 2, &wire.Ping{From: 1}); err == nil {
		t.Fatal("expected deadline error")
	}
}
