package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// Multiplexed framing. A mux client opens the stream with a preamble:
//
//	preamble: [u32 muxMagic][u8 version][u32 from-node]
//
// muxMagic exceeds maxFrame, so the first four bytes of a connection can
// never be mistaken for a legacy serial length prefix: the server sniffs
// them and picks the protocol per connection, which is what lets
// mixed-version clusters interoperate with no configuration. After the
// preamble both directions carry length-prefixed frames tagged with a
// u32 request ID:
//
//	request:  [u32 length][u32 reqID][payload...]
//	response: [u32 length][u32 reqID][u8 status][payload-or-error...]
//
// where length counts everything after itself. Many requests ride one
// connection concurrently: a single writer goroutine serializes outbound
// frames, a demux reader dispatches responses to waiting callers by ID,
// and the server runs one handler goroutine per inbound frame instead of
// one request at a time. Connection count is therefore decoupled from
// in-flight request count — the property that lets one daemon absorb
// thousands of clients without thousands of sockets.
const (
	// muxMagic is "KZMX" read little-endian; 0x584d5a4b > maxFrame.
	muxMagic = 0x584d5a4b
	// muxVersion is the mux protocol revision sent in the preamble.
	muxVersion = 1
	// muxPreambleLen is the preamble size in bytes.
	muxPreambleLen = 9
	// defaultConnsPerPeer is how many shared mux connections carry
	// traffic to each peer unless WithConnsPerPeer overrides it.
	defaultConnsPerPeer = 2
	// muxWriteQueue bounds frames queued behind a connection's writer
	// goroutine before senders block (backpressure, not an error).
	muxWriteQueue = 256
	// muxCoalesceBytes caps how much queued traffic one writev gathers.
	muxCoalesceBytes = 256 << 10
	// muxReadBufSize is the demux reader's buffer: one read syscall
	// drains many small response frames under fan-in.
	muxReadBufSize = 64 << 10
	// muxHandlerWorkers is how many resident handler goroutines each
	// inbound mux connection keeps warm. Spawning a goroutine per frame
	// pays a stack-growth tax on every request; resident workers keep
	// their grown stacks across requests. When all workers are busy (or
	// blocked inside a handler) the demux loop overflows to a fresh
	// goroutine, so handler concurrency is never capped — the pool is an
	// optimization, not a semantic limit.
	muxHandlerWorkers = 64
)

// frameWriter batches a connection's outbound frames: each flush writes
// the triggering frame plus everything already queued behind it in one
// writev-backed call. Under fan-in this is the mux protocol's syscall
// advantage — hundreds of concurrent requests ride one write — which the
// serial protocol structurally cannot have (one request per connection).
type frameWriter struct {
	conn    net.Conn
	ch      <-chan *[]byte
	held    []*[]byte
	scratch [][]byte
}

// flush writes first plus any immediately available queued frames,
// recycling every buffer, and returns the bytes written.
func (w *frameWriter) flush(first *[]byte) (int, error) {
	w.held = append(w.held[:0], first)
	w.scratch = append(w.scratch[:0], *first)
	total := len(*first)
drain:
	for total < muxCoalesceBytes {
		select {
		case bp := <-w.ch:
			w.held = append(w.held, bp)
			w.scratch = append(w.scratch, *bp)
			total += len(*bp)
		default:
			break drain
		}
	}
	bufs := net.Buffers(w.scratch)
	_, err := bufs.WriteTo(w.conn)
	for _, bp := range w.held {
		putFrameBuf(bp)
	}
	return total, err
}

// muxResult carries a demuxed response to its waiting caller.
type muxResult struct {
	msg wire.Msg
	err error
}

// pendShards spreads a connection's pending-request table: with
// thousands of callers multiplexed onto one socket, a single map mutex
// is the hottest lock in the client; sharding by request ID keeps
// registration, delivery, and abandonment mostly contention-free.
const pendShards = 8

// pendShard is one slice of a connection's pending-request table. m is
// set to nil exactly once, when the connection fails — a tombstone every
// accessor recognizes.
type pendShard struct {
	mu sync.Mutex
	m  map[uint32]chan muxResult
}

// muxConn is one multiplexed client connection to a peer. It is shared
// by every goroutine issuing requests to that peer.
type muxConn struct {
	t    *TCP
	peer ktypes.NodeID
	slot int
	conn net.Conn

	// writeCh feeds the writer goroutine length-prefixed frames; stop is
	// closed exactly once when the connection dies, releasing every
	// sender blocked on writeCh.
	writeCh chan *[]byte
	stop    chan struct{}

	mu  sync.Mutex
	err error // set before stop closes; nil while the conn is live

	pend [pendShards]pendShard
}

func newMuxConn(t *TCP, peer ktypes.NodeID, slot int, conn net.Conn) *muxConn {
	mc := &muxConn{
		t:       t,
		peer:    peer,
		slot:    slot,
		conn:    conn,
		writeCh: make(chan *[]byte, muxWriteQueue),
		stop:    make(chan struct{}),
	}
	for i := range mc.pend {
		mc.pend[i].m = make(map[uint32]chan muxResult)
	}
	return mc
}

// failErr returns the error the connection died with.
func (mc *muxConn) failErr() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err
}

// dead reports whether the connection has failed.
func (mc *muxConn) dead() bool {
	select {
	case <-mc.stop:
		return true
	default:
		return false
	}
}

// fail tears the connection down exactly once: marks it dead, closes the
// socket, unregisters it from the transport, and delivers err to every
// in-flight caller. stop closes before any shard is detached — that
// ordering is what lets registration check liveness under only its
// shard's lock (see roundTrip). Each shard map is detached under its
// lock and the sends happen after release; each channel is buffered
// (capacity 1) and owned by exactly one waiter, so the sends cannot
// block.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	close(mc.stop)
	mc.mu.Unlock()
	var pend []chan muxResult
	for i := range mc.pend {
		s := &mc.pend[i]
		s.mu.Lock()
		for _, ch := range s.m {
			pend = append(pend, ch)
		}
		s.m = nil
		s.mu.Unlock()
	}
	_ = mc.conn.Close()
	mc.t.muxConnDied(mc)
	for _, ch := range pend {
		ch <- muxResult{err: err}
	}
}

// muxResultPool recycles the buffered result channels roundTrip waits
// on; at fan-in rates a fresh channel per request is measurable
// allocator pressure. A channel returns to the pool only on paths where
// no late send can reach it (see abandon).
var muxResultPool = sync.Pool{New: func() any { return make(chan muxResult, 1) }}

// roundTrip sends m tagged with a fresh request ID and waits for the
// demux reader to deliver the matching response.
//
// Registration holds only the ID's shard lock, so the liveness check is
// the stop channel rather than mc.err: fail() closes stop strictly
// before it detaches any shard, so if dead() is false under the shard
// lock, fail() cannot detach this shard until we release it — our entry
// is guaranteed to be seen and failed.
func (mc *muxConn) roundTrip(ctx context.Context, m wire.Msg) (wire.Msg, error) {
	id := mc.t.muxSeq.Add(1)
	ch := muxResultPool.Get().(chan muxResult)
	s := &mc.pend[id%pendShards]
	s.mu.Lock()
	if mc.dead() || s.m == nil {
		s.mu.Unlock()
		muxResultPool.Put(ch)
		if err := mc.failErr(); err != nil {
			return nil, err
		}
		return nil, ErrUnreachable
	}
	s.m[id] = ch
	s.mu.Unlock()

	// Marshal into a pooled buffer after the 8-byte mux header, exactly
	// like the serial path but with the request ID where the sender node
	// used to be (the preamble already identified the sender).
	wp := getFrameBuf(8)
	req := wire.MarshalAppend((*wp)[:8], wrapTraced(ctx, m))
	binary.LittleEndian.PutUint32(req[0:4], uint32(len(req)-4))
	binary.LittleEndian.PutUint32(req[4:8], id)
	*wp = req

	select {
	case mc.writeCh <- wp:
	case <-mc.stop:
		// fail() has delivered (or is about to deliver) the error to ch;
		// fall through to the receive below.
		putFrameBuf(wp)
	case <-ctx.Done():
		putFrameBuf(wp)
		if mc.abandon(id, ch) {
			muxResultPool.Put(ch)
		}
		return nil, ctx.Err()
	}

	select {
	case res := <-ch:
		muxResultPool.Put(ch)
		return res.msg, res.err
	case <-ctx.Done():
		if mc.abandon(id, ch) {
			muxResultPool.Put(ch)
		}
		return nil, ctx.Err()
	}
}

// abandon withdraws a pending request on context cancellation. Deleting
// the entry under the lock closes the race with the demux reader: either
// the reader already delivered (the buffered result is drained and its
// frames recycled here), or it never will. It reports whether ch is safe
// to pool: when the connection has already failed (pending detached),
// fail() may still deliver its error to ch at any later point, so the
// channel must be abandoned to the garbage collector rather than reused.
func (mc *muxConn) abandon(id uint32, ch chan muxResult) bool {
	s := &mc.pend[id%pendShards]
	s.mu.Lock()
	failed := s.m == nil
	if !failed {
		delete(s.m, id)
	}
	s.mu.Unlock()
	select {
	case res := <-ch:
		wire.Recycle(res.msg)
	default:
	}
	return !failed
}

// writeLoop is the connection's single writer: it owns the outbound side
// of the socket and serializes — and coalesces — frames from every
// concurrent caller.
func (mc *muxConn) writeLoop() {
	tm := mc.t.metrics()
	w := frameWriter{conn: mc.conn, ch: mc.writeCh}
	for {
		select {
		case bp := <-mc.writeCh:
			n, err := w.flush(bp)
			if err != nil {
				mc.fail(fmt.Errorf("transport: mux write: %w", err))
				mc.drainWrites()
				return
			}
			tm.bytesOut.Add(uint64(n))
		case <-mc.stop:
			mc.drainWrites()
			return
		}
	}
}

// drainWrites recycles frames queued behind a dead connection. Their
// senders do not wait on the write itself — fail() already delivered
// their error through the pending map.
func (mc *muxConn) drainWrites() {
	for {
		select {
		case bp := <-mc.writeCh:
			putFrameBuf(bp)
		default:
			return
		}
	}
}

// readLoop is the demux reader: it decodes tagged response frames and
// hands each to the caller registered under its request ID.
func (mc *muxConn) readLoop() {
	tm := mc.t.metrics()
	br := bufio.NewReaderSize(mc.conn, muxReadBufSize)
	for {
		bp, err := readFrame(br)
		if err != nil {
			mc.fail(fmt.Errorf("transport: mux read: %w", err))
			return
		}
		tm.bytesIn.Add(uint64(len(*bp)) + 4)
		frame := *bp
		if len(frame) < 5 {
			putFrameBuf(bp)
			mc.fail(fmt.Errorf("transport: short mux response frame (%d bytes)", len(frame)))
			return
		}
		id := binary.LittleEndian.Uint32(frame[0:4])
		var res muxResult
		switch frame[4] {
		case tcpStatusOK:
			res.msg, res.err = wire.Unmarshal(frame[5:])
		case tcpStatusErr:
			res.err = &RemoteError{Msg: string(frame[5:])}
		default:
			res.err = fmt.Errorf("transport: bad response status %d", frame[4])
		}
		putFrameBuf(bp)
		s := &mc.pend[id%pendShards]
		s.mu.Lock()
		ch, ok := s.m[id]
		if ok {
			delete(s.m, id)
			// Delivering under the shard lock pairs with abandon(): once
			// a caller has withdrawn, no send can follow its delete, so
			// page frames in res can never leak. The send cannot block:
			// the channel has capacity 1 and claiming the map entry made
			// this goroutine its only sender.
			ch <- res //khazana:block-ok buffered cap-1 channel, sole sender after claiming the pending entry
		}
		s.mu.Unlock()
		if !ok {
			// The caller gave up before the reply arrived; drop it.
			wire.Recycle(res.msg)
		}
	}
}

// muxConnFor returns a live shared connection to the peer, dialing one
// if the chosen slot is empty or dead. Slots are picked round-robin so
// traffic spreads across connsPerPeer connections.
func (t *TCP) muxConnFor(ctx context.Context, to ktypes.NodeID) (*muxConn, error) {
	t.mmu.Lock()
	slots := t.muxConns[to]
	if slots == nil {
		slots = make([]*muxConn, t.connsPerPeer)
		t.muxConns[to] = slots
	}
	slot := int(t.muxPick.Add(1)) % len(slots)
	mc := slots[slot]
	t.mmu.Unlock()
	if mc != nil && !mc.dead() {
		return mc, nil
	}
	// Dial outside the lock; when two requests race for an empty slot
	// the first to install wins and the loser's connection is discarded.
	conn, err := t.dial(ctx, to)
	if err != nil {
		return nil, err
	}
	var pre [muxPreambleLen]byte
	binary.LittleEndian.PutUint32(pre[0:4], muxMagic)
	pre[4] = muxVersion
	binary.LittleEndian.PutUint32(pre[5:9], uint32(t.self))
	if _, err := conn.Write(pre[:]); err != nil {
		t.closeConn(conn)
		return nil, fmt.Errorf("transport: mux preamble: %w", err)
	}
	t.metrics().bytesOut.Add(muxPreambleLen)
	nc := newMuxConn(t, to, slot, conn)
	t.mmu.Lock()
	select {
	case <-t.closed:
		t.mmu.Unlock()
		nc.fail(ErrClosed)
		return nil, ErrClosed
	default:
	}
	if cur := t.muxConns[to][slot]; cur != nil && !cur.dead() {
		t.mmu.Unlock()
		nc.fail(ErrUnreachable) // never observed: no request was issued on nc
		return cur, nil
	}
	t.muxConns[to][slot] = nc
	t.mmu.Unlock()
	go nc.writeLoop()
	go nc.readLoop()
	return nc, nil
}

// muxConnDied unregisters a dead connection so the next request on its
// slot dials fresh, and drops it from the conns-open gauge.
func (t *TCP) muxConnDied(mc *muxConn) {
	t.mmu.Lock()
	if slots := t.muxConns[mc.peer]; mc.slot < len(slots) && slots[mc.slot] == mc {
		slots[mc.slot] = nil
	}
	t.mmu.Unlock()
	t.metrics().connsOpen.Add(-1)
}

// muxRequest sends m over one of the peer's shared mux connections. A
// connection that died around the send is retried once on a fresh dial,
// mirroring the serial path's stale-connection retry.
func (t *TCP) muxRequest(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		mc, err := t.muxConnFor(ctx, to)
		if err != nil {
			return nil, err
		}
		resp, err := mc.roundTrip(ctx, m)
		if err == nil {
			return resp, nil
		}
		if _, remote := err.(*RemoteError); remote || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// serveMux serves one multiplexed inbound connection. The magic word has
// already been consumed by the protocol sniff; read the rest of the
// preamble, then demux: one handler goroutine per inbound frame, all
// responses funneled through a single writer goroutine so concurrent
// handlers cannot interleave partial frames.
func (t *TCP) serveMux(conn net.Conn) {
	br := bufio.NewReaderSize(conn, muxReadBufSize)
	var pre [muxPreambleLen - 4]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return
	}
	if pre[0] != muxVersion {
		return
	}
	from := ktypes.NodeID(binary.LittleEndian.Uint32(pre[1:5]))
	tm := t.metrics()
	tm.bytesIn.Add(muxPreambleLen)

	out := make(chan *[]byte, muxWriteQueue)
	done := make(chan struct{})
	defer close(done)
	t.wg.Add(1)
	go func() { // response writer: sole owner of conn's outbound side
		defer t.wg.Done()
		w := frameWriter{conn: conn, ch: out}
		for {
			select {
			case bp := <-out:
				n, err := w.flush(bp)
				if err != nil {
					// Tear the connection down: the demux loop unblocks
					// with a read error and the handlers drain via done.
					_ = conn.Close()
					return
				}
				tm.bytesOut.Add(uint64(n))
			case <-done:
				return
			}
		}
	}()

	// Resident handler workers: an unbuffered channel hands a frame
	// directly to an idle worker; if none is receiving — all busy or
	// blocked — the demux loop spawns an overflow goroutine instead, so
	// a wedged handler can never stall the frames (e.g. a release) that
	// would unwedge it. An overflow goroutine joins the resident pool
	// after its frame (up to muxHandlerWorkers), so the pool grows to
	// the connection's real concurrency and warm stacks get reused
	// instead of paying goroutine-spawn and stack-growth per frame.
	work := make(chan muxWork)
	var resident atomic.Int32
	overflow := func(w muxWork) {
		defer t.wg.Done()
		t.handleMux(from, w.id, w.msg, out, done)
		if resident.Add(1) > muxHandlerWorkers {
			resident.Add(-1)
			return
		}
		defer resident.Add(-1)
		for {
			select {
			case w := <-work:
				t.handleMux(from, w.id, w.msg, out, done)
			case <-done:
				return
			}
		}
	}

	for {
		select {
		case <-t.closed:
			return
		default:
		}
		bp, err := readFrame(br)
		if err != nil {
			return
		}
		tm.bytesIn.Add(uint64(len(*bp)) + 4)
		frame := *bp
		if len(frame) < 4 {
			putFrameBuf(bp)
			return
		}
		id := binary.LittleEndian.Uint32(frame[0:4])
		msg, err := wire.Unmarshal(frame[4:])
		putFrameBuf(bp)
		if err != nil {
			// Framing survived but the payload is garbage: report it on
			// this request ID and keep serving the connection.
			muxSend(muxErrFrame(id, err), out, done)
			continue
		}
		select {
		case work <- muxWork{id: id, msg: msg}:
		default:
			t.wg.Add(1)
			go overflow(muxWork{id: id, msg: msg})
			// Let the new handler (and any drained workers) run before
			// reading further ahead of them; TCP flow control holds the
			// backlog meanwhile.
			runtime.Gosched()
		}
	}
}

// muxWork is one inbound frame awaiting a handler worker.
type muxWork struct {
	id  uint32
	msg wire.Msg
}

// handleMux runs one inbound frame's handler — on a resident worker or
// an overflow goroutine, so the demux loop keeps reading while handlers
// work — and queues the tagged response.
func (t *TCP) handleMux(from ktypes.NodeID, id uint32, msg wire.Msg, out chan *[]byte, done chan struct{}) {
	tm := t.metrics()
	hctx, msg, err := unwrapTraced(context.Background(), msg)
	if err != nil {
		muxSend(muxErrFrame(id, err), out, done)
		return
	}
	h := t.getHandler()
	if h == nil {
		wire.Recycle(msg)
		muxSend(muxErrFrame(id, ErrNoHandler), out, done)
		return
	}
	tm.inflight.Add(1)
	resp, err := h(hctx, from, msg)
	tm.inflight.Add(-1)
	if err != nil {
		wire.Recycle(msg)
		muxSend(muxErrFrame(id, err), out, done)
		return
	}
	// Marshal the response straight into a pooled frame buffer, then
	// recycle both messages' frames. The order matters: the response may
	// alias the inbound message's frame, so serialization completes
	// before either recycles.
	rp := getFrameBuf(9)
	buf := wire.MarshalAppend((*rp)[:9], resp)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
	binary.LittleEndian.PutUint32(buf[4:8], id)
	buf[8] = tcpStatusOK
	*rp = buf
	wire.Recycle(resp)
	wire.Recycle(msg)
	muxSend(rp, out, done)
}

// muxErrFrame encodes a tagged error response into a pooled buffer.
func muxErrFrame(id uint32, err error) *[]byte {
	emsg := err.Error()
	rp := getFrameBuf(9 + len(emsg))
	buf := *rp
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(emsg)+5))
	binary.LittleEndian.PutUint32(buf[4:8], id)
	buf[8] = tcpStatusErr
	copy(buf[9:], emsg)
	return rp
}

// muxSend queues a response frame for the connection's writer, dropping
// it if the connection has already shut down. The send applies
// backpressure when the writer falls behind; a dead connection cannot
// wedge handlers because serveMux closes done on the way out.
func muxSend(rp *[]byte, out chan *[]byte, done chan struct{}) {
	select {
	case out <- rp:
	case <-done:
		putFrameBuf(rp)
	}
}
