package replog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/wire"
)

// net wires several Logs together with an in-memory SendFunc and lets
// tests cut nodes off.
type net struct {
	mu   sync.Mutex
	logs map[ktypes.NodeID]*Log
	down map[ktypes.NodeID]bool
}

func newNet() *net {
	return &net{logs: make(map[ktypes.NodeID]*Log), down: make(map[ktypes.NodeID]bool)}
}

func (n *net) add(id ktypes.NodeID, dir string, lease time.Duration) *Log {
	l := New(Config{
		Self: id,
		Dir:  dir,
		Send: func(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
			n.mu.Lock()
			dead := n.down[to] || n.down[id]
			target := n.logs[to]
			n.mu.Unlock()
			if dead || target == nil {
				return nil, errors.New("replog test: peer unreachable")
			}
			switch msg := m.(type) {
			case *wire.ReplAppend:
				return target.HandleAppend(msg), nil
			case *wire.ReplPromote:
				return target.HandleVote(msg), nil
			}
			return nil, fmt.Errorf("replog test: unexpected %T", m)
		},
		LeaseTimeout: lease,
	})
	n.mu.Lock()
	n.logs[id] = l
	n.mu.Unlock()
	return l
}

func (n *net) crash(id ktypes.NodeID) {
	n.mu.Lock()
	n.down[id] = true
	n.mu.Unlock()
}

func testDesc(homes ...ktypes.NodeID) *region.Descriptor {
	return &region.Descriptor{
		Range: gaddr.Range{Start: gaddr.New(1, 0x10000), Size: 0x4000},
		Home:  homes,
		Epoch: 1,
	}
}

func releaseEntry(page uint64, version uint64, owner ktypes.NodeID) wire.ReplEntry {
	return wire.ReplEntry{
		Op: wire.ReplOpRelease, Page: gaddr.New(1, page),
		Node: owner, Nodes: []ktypes.NodeID{1, owner}, Val: version, Aux: version,
	}
}

func TestAppendCommitsOnQuorumAndReplicatesState(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	follower := n.add(2, "", 0)
	n.add(3, "", 0)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()

	for v := uint64(1); v <= 3; v++ {
		if err := leader.Append(ctx, desc, releaseEntry(0x10000, v, 2)); err != nil {
			t.Fatalf("append v%d: %v", v, err)
		}
	}
	commit, last := leader.Progress(desc.Range.Start)
	if commit != 3 || last != 3 {
		t.Fatalf("leader progress = %d/%d, want 3/3", commit, last)
	}
	// Followers hold the entries; their commit trails by one append (it
	// advances with the next append's Commit field), so drive one more.
	if err := leader.Append(ctx, desc, releaseEntry(0x10000, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, flast := follower.Progress(desc.Range.Start); flast != 4 {
		t.Fatalf("follower last = %d, want 4", flast)
	}
	st, ok := leader.Snapshot(desc.Range.Start)
	if !ok {
		t.Fatal("leader has no committed state")
	}
	if got := st.PageVersion[gaddr.New(1, 0x10000)]; got != 4 {
		t.Fatalf("leader state version = %d, want 4", got)
	}
	if got := st.Owner[gaddr.New(1, 0x10000)]; got != 2 {
		t.Fatalf("leader state owner = %d, want 2", got)
	}
}

func TestAppendRejectsNonLeader(t *testing.T) {
	n := newNet()
	standby := n.add(2, "", 0)
	desc := testDesc(1, 2, 3)
	if err := standby.Append(context.Background(), desc, releaseEntry(0x10000, 1, 2)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("append from standby = %v, want ErrNotLeader", err)
	}
}

func TestSingleHomeRegionCommitsWithoutNetwork(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	desc := testDesc(1)
	if err := leader.Append(context.Background(), desc, releaseEntry(0x10000, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if commit, _ := leader.Progress(desc.Range.Start); commit != 1 {
		t.Fatalf("commit = %d, want 1", commit)
	}
}

func TestLateFollowerCatchesUpViaSnapshot(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	// Node 3 exists but node 2 joins late: run well past the compaction
	// floor so entry replay alone cannot catch node 2 up.
	n.add(3, "", 0)
	for v := uint64(1); v <= keepTail+40; v++ {
		if err := leader.Append(ctx, desc, releaseEntry(0x10000+4096*(v%8), v, 3)); err != nil {
			t.Fatalf("append v%d: %v", v, err)
		}
	}
	late := n.add(2, "", 0)
	if err := leader.Append(ctx, desc, releaseEntry(0x10000, keepTail+41, 3)); err != nil {
		t.Fatal(err)
	}
	_, last := leader.Progress(desc.Range.Start)
	if _, lateLast := late.Progress(desc.Range.Start); lateLast != last {
		t.Fatalf("late follower last = %d, want %d", lateLast, last)
	}
}

func TestCompactionBoundsTail(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	desc := testDesc(1)
	for v := uint64(1); v <= keepTail*3; v++ {
		if err := leader.Append(context.Background(), desc, releaseEntry(0x10000, v, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := leader.TailLen(); got > keepTail {
		t.Fatalf("tail = %d entries, want <= %d", got, keepTail)
	}
	// Compaction must not lose state.
	st, _ := leader.Snapshot(desc.Range.Start)
	if got := st.PageVersion[gaddr.New(1, 0x10000)]; got != keepTail*3 {
		t.Fatalf("state version = %d, want %d", got, keepTail*3)
	}
}

func TestElectionAfterLeaderCrash(t *testing.T) {
	n := newNet()
	lease := 30 * time.Millisecond
	leader := n.add(1, "", lease)
	standby := n.add(2, "", lease)
	n.add(3, "", lease)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	for v := uint64(1); v <= 5; v++ {
		if err := leader.Append(ctx, desc, releaseEntry(0x10000, v, 2)); err != nil {
			t.Fatal(err)
		}
	}
	n.crash(1)
	// The lease must expire before peers grant votes; retry like the
	// promotion path does.
	deadline := time.Now().Add(2 * time.Second)
	won := false
	for time.Now().Before(deadline) {
		if standby.Campaign(ctx, desc) {
			won = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !won {
		t.Fatal("standby never won the election")
	}
	if id, _ := standby.Leader(desc.Range.Start); id != 2 {
		t.Fatalf("leader = %d, want 2", id)
	}
	// The new leader resumes the log: all committed releases survive.
	st, ok := standby.Snapshot(desc.Range.Start)
	if !ok || st.PageVersion[gaddr.New(1, 0x10000)] < 4 {
		t.Fatalf("new leader lost releases: ok=%v state=%+v", ok, st)
	}
	// And can append under the new homes.
	newDesc := testDesc(2, 3)
	newDesc.Range = desc.Range
	if err := standby.Append(ctx, newDesc, wire.ReplEntry{
		Op: wire.ReplOpHomes, Nodes: []ktypes.NodeID{2, 3}, Val: 2,
	}); err != nil {
		t.Fatalf("append after election: %v", err)
	}
}

func TestVoteDeniedWhileLeaseLive(t *testing.T) {
	n := newNet()
	lease := time.Hour // effectively never expires
	leader := n.add(1, "", lease)
	standby := n.add(2, "", lease)
	n.add(3, "", lease)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	if err := leader.Append(ctx, desc, releaseEntry(0x10000, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if standby.Campaign(ctx, desc) {
		t.Fatal("election won against a live leader's lease")
	}
}

func TestVoteDeniedForStaleLog(t *testing.T) {
	n := newNet()
	lease := time.Nanosecond // always expired
	leader := n.add(1, "", lease)
	n.add(2, "", lease)
	n.add(3, "", lease)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	for v := uint64(1); v <= 4; v++ {
		if err := leader.Append(ctx, desc, releaseEntry(0x10000, v, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh node with an empty log must not win over current standbys.
	empty := n.add(9, "", lease)
	descWithEmpty := testDesc(1, 2, 9)
	descWithEmpty.Range = desc.Range
	if empty.Campaign(ctx, descWithEmpty) {
		t.Fatal("empty-log candidate won over up-to-date voters")
	}
}

func TestDeposedLeaderGetsErrNotLeader(t *testing.T) {
	n := newNet()
	lease := time.Nanosecond
	old := n.add(1, "", lease)
	standby := n.add(2, "", lease)
	n.add(3, "", lease)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	if err := old.Append(ctx, desc, releaseEntry(0x10000, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if !standby.Campaign(ctx, desc) {
		t.Fatal("standby could not win with expired lease")
	}
	// The deposed leader's next append must be refused by the quorum.
	if err := old.Append(ctx, desc, releaseEntry(0x10000, 2, 2)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("deposed leader append = %v, want ErrNotLeader", err)
	}
}

func TestObserverSeesFollowerProgress(t *testing.T) {
	n := newNet()
	var mu sync.Mutex
	var gotLeader ktypes.NodeID
	var gotLast uint64
	follower := New(Config{
		Self: 2,
		Send: func(context.Context, ktypes.NodeID, wire.Msg) (wire.Msg, error) {
			return nil, errors.New("unused")
		},
		Observer: func(_ gaddr.Addr, leader ktypes.NodeID, _ uint64, last uint64) {
			mu.Lock()
			gotLeader, gotLast = leader, last
			mu.Unlock()
		},
	})
	n.mu.Lock()
	n.logs[2] = follower
	n.mu.Unlock()
	leader := n.add(1, "", 0)
	desc := testDesc(1, 2)
	if err := leader.Append(context.Background(), desc, releaseEntry(0x10000, 1, 2)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotLeader != 1 || gotLast != 1 {
		t.Fatalf("observer saw leader=%d last=%d, want 1/1", gotLeader, gotLast)
	}
}

func TestDurableTailRoundTrips(t *testing.T) {
	dir := t.TempDir()
	n := newNet()
	leader := n.add(1, dir, 0)
	desc := testDesc(1)
	ctx := context.Background()
	for v := uint64(1); v <= 10; v++ {
		if err := leader.Append(ctx, desc, releaseEntry(0x10000, v, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Save(); err != nil {
		t.Fatal(err)
	}

	revived := n.add(1, dir, 0)
	if err := revived.Load(); err != nil {
		t.Fatal(err)
	}
	commit, last := revived.Progress(desc.Range.Start)
	wantCommit, wantLast := leader.Progress(desc.Range.Start)
	if commit != wantCommit || last != wantLast {
		t.Fatalf("restored progress %d/%d, want %d/%d", commit, last, wantCommit, wantLast)
	}
	st, ok := revived.Snapshot(desc.Range.Start)
	if !ok || st.PageVersion[gaddr.New(1, 0x10000)] != 10 {
		t.Fatalf("restored state lost releases: %+v", st)
	}
	if revived.TailLen() != leader.TailLen() {
		t.Fatalf("restored tail %d, want %d", revived.TailLen(), leader.TailLen())
	}
	// And the revived node can continue appending where it left off.
	if err := revived.Append(ctx, desc, releaseEntry(0x10000, 11, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestQuorumLossCommitsDegraded(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	n.add(2, "", 0)
	n.add(3, "", 0)
	n.crash(2)
	n.crash(3)
	desc := testDesc(1, 2, 3)
	// Both followers down: the append must still commit locally (the
	// unreachable sends fail fast, no ackTimeout stall).
	done := make(chan error, 1)
	go func() {
		done <- leader.Append(context.Background(), desc, releaseEntry(0x10000, 1, 1))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("degraded append did not return")
	}
	if commit, _ := leader.Progress(desc.Range.Start); commit != 1 {
		t.Fatalf("degraded commit = %d, want 1", commit)
	}
}

func TestConcurrentAppendsStayOrdered(t *testing.T) {
	n := newNet()
	leader := n.add(1, "", 0)
	follower := n.add(2, "", 0)
	n.add(3, "", 0)
	desc := testDesc(1, 2, 3)
	ctx := context.Background()
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := leader.Append(ctx, desc, releaseEntry(0x10000+4096*uint64(w), uint64(i+1), 2)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_, last := leader.Progress(desc.Range.Start)
	if last != writers*perWriter {
		t.Fatalf("last index = %d, want %d", last, writers*perWriter)
	}
	// Drive one more append (on a page no writer used) so followers
	// learn the final commit, then check the writers' pages match at
	// the follower.
	if err := leader.Append(ctx, desc, releaseEntry(0x30000, 1, 2)); err != nil {
		t.Fatal(err)
	}
	lst, _ := leader.Snapshot(desc.Range.Start)
	fst, _ := follower.Snapshot(desc.Range.Start)
	for w := 0; w < writers; w++ {
		p := gaddr.New(1, 0x10000+4096*uint64(w))
		if lst.PageVersion[p] != perWriter || fst.PageVersion[p] != perWriter {
			t.Fatalf("page %v: leader %d follower %d, want %d",
				p, lst.PageVersion[p], fst.PageVersion[p], perWriter)
		}
	}
}
