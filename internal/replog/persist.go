package replog

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/wire"
)

// Durable tail. The in-memory log is the hot path; a clean shutdown
// (or an explicit checkpoint) writes every region's retained tail and
// materialized state to replog.bin in the persist.go idiom — encode,
// write a temp file, rename — so a restarted node resumes its replicas
// with terms, votes, and commit indexes intact instead of re-fetching
// snapshots from every leader.

const (
	replogFile  = "replog.bin"
	replogMagic = 0x4B52_4C47 // "KRLG"
)

// Save writes the durable tail to the configured directory; a Log with
// no directory is memory-only and Save is a no-op.
func (l *Log) Save() error {
	if l.dir == "" {
		return nil
	}
	l.mu.Lock()
	starts := make([]gaddr.Addr, 0, len(l.regions))
	for s := range l.regions {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Less(starts[j]) })
	e := enc.NewEncoder(512)
	e.U32(replogMagic)
	e.U32(uint32(len(starts)))
	for _, s := range starts {
		rl := l.regions[s]
		rl.mu.Lock()
		e.Addr(rl.start)
		e.U64(rl.term)
		e.U64(rl.votedTerm)
		e.NodeID(rl.votedFor)
		e.U64(rl.floor)
		e.U64(rl.floorTerm)
		e.U64(rl.commit)
		e.U32(uint32(len(rl.entries)))
		for i := range rl.entries {
			rl.entries[i].EncodeTo(e)
		}
		rl.state.EncodeTo(e)
		rl.mu.Unlock()
	}
	l.mu.Unlock()
	path := filepath.Join(l.dir, replogFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, e.Bytes(), 0o644); err != nil {
		return fmt.Errorf("replog: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load restores a durable tail written by Save, if present.
func (l *Log) Load() error {
	if l.dir == "" {
		return nil
	}
	raw, err := os.ReadFile(filepath.Join(l.dir, replogFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("replog: restore: %w", err)
	}
	d := enc.NewDecoder(raw)
	if magic := d.U32(); magic != replogMagic {
		return fmt.Errorf("replog: restore: bad magic %#x", magic)
	}
	count := int(d.U32())
	total := 0
	for i := 0; i < count; i++ {
		start := d.Addr()
		rl := &regionLog{start: start}
		rl.term = d.U64()
		rl.votedTerm = d.U64()
		rl.votedFor = d.NodeID()
		rl.floor = d.U64()
		rl.floorTerm = d.U64()
		rl.commit = d.U64()
		n := int(d.U32())
		for j := 0; j < n; j++ {
			en := wire.DecodeReplEntry(d)
			if d.Err() != nil {
				return fmt.Errorf("replog: restore: region %d entry %d: %w", i, j, d.Err())
			}
			rl.entries = append(rl.entries, en)
		}
		rl.state = DecodeRegionState(d)
		if d.Err() != nil {
			return fmt.Errorf("replog: restore: region %d: %w", i, d.Err())
		}
		total += len(rl.entries)
		l.mu.Lock()
		l.regions[start] = rl
		l.mu.Unlock()
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("replog: restore: %w", err)
	}
	l.addTail(total)
	return nil
}
