package replog

import (
	"sort"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// RegionState is the materialized result of replaying a region's
// metadata log up to its commit index: everything a standby needs to
// resume as primary home without a lost-release window. Page contents
// travel on the ordinary replication data path (UpdateBatch/ReplicaPut);
// the log carries only the control state naming which versions exist
// and who holds them.
type RegionState struct {
	// PageVersion is the committed version of each page released at the
	// home (only pages that have seen a write release appear).
	PageVersion map[gaddr.Addr]uint64
	// Owner is the page's owner after its latest committed release.
	Owner map[gaddr.Addr]ktypes.NodeID
	// Copyset is the page's sharer set after its latest committed
	// release.
	Copyset map[gaddr.Addr][]ktypes.NodeID
	// PubEpoch is the home's publish epoch after the latest committed
	// release (snapshot cut counter).
	PubEpoch uint64
	// Homes is the region's committed home list, primary first, and
	// HomeEpoch the descriptor epoch it was installed at.
	Homes     []ktypes.NodeID
	HomeEpoch uint64
}

func newRegionState() RegionState {
	return RegionState{
		PageVersion: make(map[gaddr.Addr]uint64),
		Owner:       make(map[gaddr.Addr]ktypes.NodeID),
		Copyset:     make(map[gaddr.Addr][]ktypes.NodeID),
	}
}

// apply folds one committed entry into the state.
func (s *RegionState) apply(en *wire.ReplEntry) {
	switch en.Op {
	case wire.ReplOpRelease:
		if en.Val > s.PageVersion[en.Page] {
			s.PageVersion[en.Page] = en.Val
		}
		s.Owner[en.Page] = en.Node
		s.Copyset[en.Page] = append([]ktypes.NodeID(nil), en.Nodes...)
		if en.Aux > s.PubEpoch {
			s.PubEpoch = en.Aux
		}
	case wire.ReplOpHomes:
		s.Homes = append([]ktypes.NodeID(nil), en.Nodes...)
		if en.Val > s.HomeEpoch {
			s.HomeEpoch = en.Val
		}
	}
}

// clone returns a deep copy safe to hand outside the log's locks.
func (s *RegionState) clone() RegionState {
	out := RegionState{
		PageVersion: make(map[gaddr.Addr]uint64, len(s.PageVersion)),
		Owner:       make(map[gaddr.Addr]ktypes.NodeID, len(s.Owner)),
		Copyset:     make(map[gaddr.Addr][]ktypes.NodeID, len(s.Copyset)),
		PubEpoch:    s.PubEpoch,
		Homes:       append([]ktypes.NodeID(nil), s.Homes...),
		HomeEpoch:   s.HomeEpoch,
	}
	for p, v := range s.PageVersion {
		out.PageVersion[p] = v
	}
	for p, o := range s.Owner {
		out.Owner[p] = o
	}
	for p, cs := range s.Copyset {
		out.Copyset[p] = append([]ktypes.NodeID(nil), cs...)
	}
	return out
}

// sortedPages returns the state's page keys in address order so the
// encoding (and therefore snapshot bytes and the durable tail) is
// deterministic.
func (s *RegionState) sortedPages() []gaddr.Addr {
	pages := make([]gaddr.Addr, 0, len(s.PageVersion))
	for p := range s.PageVersion {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].Less(pages[j]) })
	return pages
}

// EncodeTo appends the state's encoding to e.
func (s *RegionState) EncodeTo(e *enc.Encoder) {
	pages := s.sortedPages()
	e.U32(uint32(len(pages)))
	for _, p := range pages {
		e.Addr(p)
		e.U64(s.PageVersion[p])
		e.NodeID(s.Owner[p])
		e.NodeIDs(s.Copyset[p])
	}
	e.U64(s.PubEpoch)
	e.NodeIDs(s.Homes)
	e.U64(s.HomeEpoch)
}

// DecodeRegionState reads a state encoded by EncodeTo.
func DecodeRegionState(d *enc.Decoder) RegionState {
	s := newRegionState()
	n := int(d.U32())
	for i := 0; i < n; i++ {
		p := d.Addr()
		v := d.U64()
		o := d.NodeID()
		cs := d.NodeIDs()
		if d.Err() != nil {
			return s
		}
		s.PageVersion[p] = v
		s.Owner[p] = o
		if cs != nil {
			s.Copyset[p] = cs
		}
	}
	s.PubEpoch = d.U64()
	s.Homes = d.NodeIDs()
	s.HomeEpoch = d.U64()
	return s
}
