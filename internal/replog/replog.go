// Package replog is a compact majority-replicated command log for
// region home state — the availability layer behind one-election home
// failover. Each CREW home (the leader for its regions) appends
// region-metadata deltas at release boundaries: ownership grants,
// copyset changes, page-directory version updates, and publish-epoch
// advances. The other listed homes follow the log as warm standbys; a
// release is acked to the client only after a majority of the home
// list holds its log entry, so a standby that wins the post-crash
// election resumes from the log with no lost-release window, subsuming
// the §3.5 retry queue for the common crash case.
//
// The design is a deliberately small Raft subset shaped to Khazana's
// topology: one log per region, membership fixed by the region
// descriptor's home list, a leader lease in place of periodic
// heartbeats (appends double as lease refreshes; elections are only
// triggered by the existing unreachable-home detection in the client
// retry path), and a log-up-to-date vote rule that steers leadership
// to the most current standby. Page contents never ride the log —
// they travel on the ordinary replication data path — so the log stays
// compact and the E16 one-update-RPC-per-replica invariant holds.
package replog

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

const (
	// DefaultLeaseTimeout is how long a standby honors a silent
	// leader's lease before granting votes against it. Appends refresh
	// the lease, so an active home is never deposed by a spurious
	// election; after a crash the first campaigner waits out at most
	// one lease window.
	DefaultLeaseTimeout = 250 * time.Millisecond
	// keepTail bounds the committed entries retained per region after
	// compaction; followers further behind catch up via a state
	// snapshot instead of entry replay.
	keepTail = 64
	// ackTimeout bounds the leader's wait for quorum acks on one
	// append before committing in degraded (local-only) mode.
	ackTimeout = time.Second
)

// ErrNotLeader reports that this node is not the region's log leader;
// the caller's descriptor is stale and should be refreshed.
var ErrNotLeader = errors.New("replog: not region leader")

// SendFunc issues one RPC to a peer and returns its reply. It is
// injected by the embedding node so the log has no transport
// dependency.
type SendFunc func(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error)

// Config configures a Log.
type Config struct {
	// Self is the embedding node's identity.
	Self ktypes.NodeID
	// Dir, when non-empty, is where Save persists the durable tail.
	Dir string
	// Send issues RPCs to fellow home-list members.
	Send SendFunc
	// Tel supplies the metrics registry (nil disables).
	Tel *telemetry.Registry
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// LeaseTimeout overrides DefaultLeaseTimeout when positive.
	LeaseTimeout time.Duration
	// Observer, when non-nil, is told about follower-side progress
	// after every accepted append — the hook cluster standby tracking
	// hangs off.
	Observer func(region gaddr.Addr, leader ktypes.NodeID, term, lastIndex uint64)
}

// Log is a node's collection of per-region replicated metadata logs:
// leader for the regions this node is primary home of, follower for
// the regions it stands by.
type Log struct {
	self     ktypes.NodeID
	dir      string
	send     SendFunc
	now      func() time.Time
	lease    time.Duration
	observer func(region gaddr.Addr, leader ktypes.NodeID, term, lastIndex uint64)

	mu      sync.Mutex
	regions map[gaddr.Addr]*regionLog

	// tail tracks retained entries across all regions for the gauge.
	tail atomic.Int64

	logLen    *telemetry.Gauge
	commitLat *telemetry.Histogram
	elections *telemetry.Counter
	failovers *telemetry.Counter
	degraded  *telemetry.Counter
}

// regionLog is one region's log replica. appendMu serializes leader
// appends for the region end to end (including follower RPCs) so
// entries replicate in index order; mu guards everything else and is
// never held across an RPC.
type regionLog struct {
	start    gaddr.Addr
	appendMu sync.Mutex

	mu        sync.Mutex
	term      uint64
	leader    ktypes.NodeID
	votedTerm uint64
	votedFor  ktypes.NodeID
	// lastAppend is the lease timestamp: the last time this replica
	// accepted an append from the leader (or, on the leader itself,
	// performed one).
	lastAppend time.Time
	// floor is the index of the last compacted-away entry; entries
	// holds indexes floor+1..floor+len(entries). floorTerm is the term
	// of the entry at floor.
	floor     uint64
	floorTerm uint64
	entries   []wire.ReplEntry
	commit    uint64
	state     RegionState
}

// New builds a Log. Call Load afterwards to restore a durable tail.
func New(cfg Config) *Log {
	l := &Log{
		self:     cfg.Self,
		dir:      cfg.Dir,
		send:     cfg.Send,
		now:      cfg.Now,
		lease:    cfg.LeaseTimeout,
		observer: cfg.Observer,
		regions:  make(map[gaddr.Addr]*regionLog),
	}
	if l.now == nil {
		l.now = time.Now
	}
	if l.lease <= 0 {
		l.lease = DefaultLeaseTimeout
	}
	l.logLen = cfg.Tel.Gauge(telemetry.MetricReplLogLen)
	l.commitLat = cfg.Tel.Histogram(telemetry.MetricReplCommitLatency)
	l.elections = cfg.Tel.Counter(telemetry.MetricReplElections)
	l.failovers = cfg.Tel.Counter(telemetry.MetricReplFailovers)
	l.degraded = cfg.Tel.Counter(telemetry.MetricReplDegradedCommits)
	return l
}

// region returns (creating if needed) the region's log replica.
func (l *Log) region(start gaddr.Addr) *regionLog {
	l.mu.Lock()
	defer l.mu.Unlock()
	rl, ok := l.regions[start]
	if !ok {
		rl = &regionLog{start: start, state: newRegionState()}
		l.regions[start] = rl
	}
	return rl
}

// addTail moves the retained-entry gauge by delta.
func (l *Log) addTail(delta int) {
	l.tail.Add(int64(delta))
	l.logLen.Set(l.tail.Load())
}

func (rl *regionLog) lastIndexLocked() uint64 {
	return rl.floor + uint64(len(rl.entries))
}

func (rl *regionLog) lastTermLocked() uint64 {
	if n := len(rl.entries); n > 0 {
		return rl.entries[n-1].Term
	}
	return rl.floorTerm
}

// termAtLocked returns the term of the entry at index i, or ok=false
// when the replica does not hold it.
func (rl *regionLog) termAtLocked(i uint64) (uint64, bool) {
	switch {
	case i == rl.floor:
		return rl.floorTerm, true
	case i > rl.floor && i <= rl.lastIndexLocked():
		return rl.entries[i-rl.floor-1].Term, true
	case i == 0:
		return 0, true
	default:
		return 0, false
	}
}

// advanceCommitLocked moves the commit index up to min(to, last),
// applying newly committed entries to the materialized state, and
// returns how many entries compaction dropped.
func (rl *regionLog) advanceCommitLocked(to uint64) int {
	last := rl.lastIndexLocked()
	if to > last {
		to = last
	}
	for i := rl.commit + 1; i <= to; i++ {
		rl.state.apply(&rl.entries[i-rl.floor-1])
	}
	if to > rl.commit {
		rl.commit = to
	}
	return rl.compactLocked()
}

// compactLocked drops committed entries beyond the retained tail and
// returns how many were dropped.
func (rl *regionLog) compactLocked() int {
	committed := rl.commit - rl.floor
	if committed <= keepTail {
		return 0
	}
	drop := int(committed - keepTail)
	rl.floorTerm = rl.entries[drop-1].Term
	rl.floor += uint64(drop)
	rl.entries = append([]wire.ReplEntry(nil), rl.entries[drop:]...)
	return drop
}

// Append appends entries to the region's log as its leader, replicates
// them to the other listed homes, and returns once a majority of the
// home list (counting self) holds them. Entries need only Op and the
// op's payload fields; Index, Term, and Region are stamped here. A
// single-home region commits immediately with no network. If quorum
// is not reached within ackTimeout the entries commit locally anyway
// (degraded mode, counted) — Khazana favors availability here, and the
// log-up-to-date election rule keeps a lagging standby from winning
// leadership over a current one. Returns ErrNotLeader when another
// node holds the region's leadership.
func (l *Log) Append(ctx context.Context, desc *region.Descriptor, entries ...wire.ReplEntry) error {
	if len(entries) == 0 {
		return nil
	}
	rl := l.region(desc.Range.Start)
	// appendMu is held across the follower RPCs below: per-region
	// appends must replicate in index order, and the quorum wait is
	// the entire point of the critical section.
	rl.appendMu.Lock() //khazana:block-ok serializes per-region appends across quorum RPCs
	defer rl.appendMu.Unlock()

	rl.mu.Lock()
	if rl.leader != l.self {
		// A region with no elected leader is led by its listed primary
		// home by birthright (the normal creation path) — unless this
		// replica granted its current-term vote to someone else, in
		// which case an election is in flight or won elsewhere and a
		// deposed primary must not sneak leadership back.
		if rl.leader == 0 && len(desc.Home) > 0 && desc.Home[0] == l.self &&
			(rl.votedFor == 0 || rl.votedFor == l.self) {
			rl.leader = l.self
			if rl.term == 0 {
				rl.term = 1
			}
		} else {
			rl.mu.Unlock()
			return ErrNotLeader
		}
	}
	term := rl.term
	prevIdx := rl.lastIndexLocked()
	prevTerm, _ := rl.termAtLocked(prevIdx)
	for i := range entries {
		entries[i].Index = prevIdx + uint64(i+1)
		entries[i].Term = term
		entries[i].Region = desc.Range.Start
	}
	rl.entries = append(rl.entries, entries...)
	last := rl.lastIndexLocked()
	commit := rl.commit
	rl.lastAppend = l.now()
	rl.mu.Unlock()
	l.addTail(len(entries))

	start := l.now()
	var followers []ktypes.NodeID
	for _, h := range desc.Home {
		if h != l.self {
			followers = append(followers, h)
		}
	}
	quorum := len(desc.Home)/2 + 1
	needed := quorum - 1 // acks beyond self
	deposedBy := uint64(0)
	if needed > 0 && len(followers) > 0 {
		msg := &wire.ReplAppend{
			Region: desc.Range.Start, From: l.self, Term: term,
			PrevIndex: prevIdx, PrevTerm: prevTerm, Commit: commit,
			Entries: entries,
		}
		//khazana:block-ok per-region appends must replicate in index order; the quorum wait is the critical section's point
		acks, maxTerm := l.replicate(ctx, rl, followers, msg, term)
		if maxTerm > term {
			deposedBy = maxTerm
		} else if acks < needed {
			l.degraded.Add(1)
		}
	}

	rl.mu.Lock()
	if deposedBy > term {
		if rl.term < deposedBy {
			rl.term = deposedBy
		}
		if rl.leader == l.self {
			rl.leader = 0
		}
		rl.mu.Unlock()
		return ErrNotLeader
	}
	var dropped int
	if rl.term == term && rl.leader == l.self {
		dropped = rl.advanceCommitLocked(last)
	}
	rl.mu.Unlock()
	if dropped > 0 {
		l.addTail(-dropped)
	}
	l.commitLat.ObserveSince(start)
	return nil
}

// replicate ships one append to every follower in parallel and returns
// how many acked plus the highest term seen in replies. A follower
// that rejects for a log gap is caught up with a state snapshot and
// the full uncommitted tail in one retry.
func (l *Log) replicate(ctx context.Context, rl *regionLog, followers []ktypes.NodeID, msg *wire.ReplAppend, term uint64) (int, uint64) {
	tctx, cancel := context.WithTimeout(ctx, ackTimeout)
	defer cancel()
	type result struct {
		ok   bool
		term uint64
	}
	ch := make(chan result, len(followers))
	for _, f := range followers {
		f := f
		go func() {
			reply, err := l.send(tctx, f, msg)
			ack, isAck := reply.(*wire.ReplAck)
			if err != nil || !isAck {
				ch <- result{}
				return
			}
			if ack.OK || ack.Term > term {
				ch <- result{ok: ack.OK, term: ack.Term}
				return
			}
			// Log gap at the follower: catch it up with a snapshot of
			// the committed state plus the entire uncommitted tail.
			cu := l.catchupMsg(rl, msg, term)
			reply, err = l.send(tctx, f, cu)
			if ack, isAck := reply.(*wire.ReplAck); err == nil && isAck {
				ch <- result{ok: ack.OK, term: ack.Term}
				return
			}
			ch <- result{}
		}()
	}
	acks, maxTerm := 0, uint64(0)
	for i := 0; i < len(followers); i++ {
		select {
		case r := <-ch:
			if r.ok {
				acks++
			}
			if r.term > maxTerm {
				maxTerm = r.term
			}
		case <-tctx.Done():
			return acks, maxTerm
		}
		if maxTerm > term {
			return acks, maxTerm
		}
	}
	return acks, maxTerm
}

// catchupMsg builds a snapshot-bearing append: committed state cut at
// the commit index plus every retained entry above it.
func (l *Log) catchupMsg(rl *regionLog, base *wire.ReplAppend, term uint64) *wire.ReplAppend {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	e := enc.NewEncoder(256)
	rl.state.EncodeTo(e)
	snapTerm, _ := rl.termAtLocked(rl.commit)
	tail := rl.entries
	if rl.commit > rl.floor {
		tail = rl.entries[rl.commit-rl.floor:]
	}
	return &wire.ReplAppend{
		Region: base.Region, From: l.self, Term: term,
		PrevIndex: rl.commit, PrevTerm: snapTerm, Commit: rl.commit,
		Entries:   append([]wire.ReplEntry(nil), tail...),
		SnapIndex: rl.commit, SnapTerm: snapTerm, SnapState: e.Bytes(),
	}
}

// HandleAppend applies a leader's append on a follower and returns the
// ack. Exported for the node's RPC dispatch.
func (l *Log) HandleAppend(m *wire.ReplAppend) *wire.ReplAck {
	rl := l.region(m.Region)
	rl.mu.Lock()
	if m.Term < rl.term {
		ack := &wire.ReplAck{Term: rl.term, Ack: rl.lastIndexLocked(), Err: "stale term"}
		rl.mu.Unlock()
		return ack
	}
	rl.term = m.Term
	rl.leader = m.From
	rl.votedFor = 0
	rl.lastAppend = l.now()

	delta := 0
	// Snapshot install for a follower behind the leader's compaction
	// floor.
	if m.SnapIndex > 0 && len(m.SnapState) > 0 && m.SnapIndex > rl.commit {
		d := enc.NewDecoder(m.SnapState)
		st := DecodeRegionState(d)
		if d.Err() != nil {
			ack := &wire.ReplAck{Term: rl.term, Ack: rl.commit, Err: "bad snapshot"}
			rl.mu.Unlock()
			return ack
		}
		delta -= len(rl.entries)
		rl.state = st
		rl.floor = m.SnapIndex
		rl.floorTerm = m.SnapTerm
		rl.entries = nil
		rl.commit = m.SnapIndex
	}

	// Raft consistency check: we must hold the leader's previous entry
	// at the same term, else the leader retries with a snapshot.
	if pt, ok := rl.termAtLocked(m.PrevIndex); !ok || (m.PrevIndex > 0 && pt != m.PrevTerm) {
		ack := &wire.ReplAck{Term: rl.term, Ack: rl.commit, Err: "log gap"}
		if delta != 0 {
			l.addTail(delta)
		}
		rl.mu.Unlock()
		return ack
	}

	for i := range m.Entries {
		en := m.Entries[i]
		if en.Index <= rl.floor {
			continue
		}
		off := int(en.Index - rl.floor - 1)
		if off < len(rl.entries) {
			if rl.entries[off].Term == en.Term {
				continue
			}
			// Divergent uncommitted suffix from a deposed leader:
			// truncate and take the new leader's entries.
			delta -= len(rl.entries) - off
			rl.entries = rl.entries[:off]
		}
		rl.entries = append(rl.entries, en)
		delta++
	}
	if m.Commit > rl.commit {
		delta -= rl.advanceCommitLocked(m.Commit)
	}
	ack := &wire.ReplAck{Term: rl.term, Ack: rl.lastIndexLocked(), OK: true}
	leader, term, last := rl.leader, rl.term, rl.lastIndexLocked()
	rl.mu.Unlock()

	if delta != 0 {
		l.addTail(delta)
	}
	if l.observer != nil {
		l.observer(m.Region, leader, term, last)
	}
	return ack
}

// HandleVote answers a standby's election request. The vote is granted
// iff the term is new, this replica has not voted for someone else in
// it, the current leader's lease has expired, and the candidate's log
// is at least as up to date as ours. Exported for the node's RPC
// dispatch.
func (l *Log) HandleVote(m *wire.ReplPromote) *wire.ReplAck {
	rl := l.region(m.Region)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	li := rl.lastIndexLocked()
	lt := rl.lastTermLocked()
	if m.Term <= rl.term {
		return &wire.ReplAck{Term: rl.term, Ack: li, Err: "stale term"}
	}
	if m.Term <= rl.votedTerm && rl.votedFor != m.Candidate {
		return &wire.ReplAck{Term: rl.term, Ack: li, Err: "already voted"}
	}
	if rl.leader != 0 && rl.leader != m.Candidate &&
		l.now().Sub(rl.lastAppend) < l.lease {
		return &wire.ReplAck{Term: rl.term, Ack: li, Err: "lease still live"}
	}
	if m.LastTerm < lt || (m.LastTerm == lt && m.LastIndex < li) {
		return &wire.ReplAck{Term: rl.term, Ack: li, Err: "log behind"}
	}
	rl.term = m.Term
	rl.votedTerm = m.Term
	rl.votedFor = m.Candidate
	rl.leader = 0
	return &wire.ReplAck{Term: rl.term, Ack: li, VoteGranted: true}
}

// Campaign runs one election round for the region and reports whether
// this node won. Callers retry (the lease must expire before peers
// grant votes against a freshly crashed leader); a majority of the
// descriptor's home list is required, so a two-home region with a dead
// primary cannot elect — the caller falls back to the legacy §3.5
// promotion for that shape.
func (l *Log) Campaign(ctx context.Context, desc *region.Descriptor) bool {
	rl := l.region(desc.Range.Start)
	rl.mu.Lock()
	term := rl.term + 1
	if rl.votedTerm >= term {
		term = rl.votedTerm + 1
	}
	rl.term = term
	rl.votedTerm = term
	rl.votedFor = l.self
	rl.leader = 0
	li := rl.lastIndexLocked()
	lt := rl.lastTermLocked()
	rl.mu.Unlock()
	l.elections.Add(1)

	var voters []ktypes.NodeID
	for _, h := range desc.Home {
		if h != l.self {
			voters = append(voters, h)
		}
	}
	quorum := len(desc.Home)/2 + 1
	votes := 1 // self
	maxTerm := term
	if len(voters) > 0 {
		msg := &wire.ReplPromote{
			Region: desc.Range.Start, Candidate: l.self,
			Term: term, LastIndex: li, LastTerm: lt,
		}
		type result struct {
			granted bool
			term    uint64
		}
		ch := make(chan result, len(voters))
		for _, v := range voters {
			v := v
			go func() {
				reply, err := l.send(ctx, v, msg)
				if ack, ok := reply.(*wire.ReplAck); err == nil && ok {
					ch <- result{granted: ack.VoteGranted, term: ack.Term}
					return
				}
				ch <- result{}
			}()
		}
		for i := 0; i < len(voters); i++ {
			select {
			case r := <-ch:
				if r.granted {
					votes++
				}
				if r.term > maxTerm {
					maxTerm = r.term
				}
			case <-ctx.Done():
				i = len(voters) // stop waiting
			}
			if votes >= quorum {
				break
			}
		}
	}

	rl.mu.Lock()
	defer rl.mu.Unlock()
	if maxTerm > rl.term {
		rl.term = maxTerm
	}
	if votes >= quorum && rl.term == term {
		rl.leader = l.self
		rl.lastAppend = l.now()
		l.failovers.Add(1)
		return true
	}
	return false
}

// Leader returns the region's known leader and term (0,0 when the
// region has no log activity yet).
func (l *Log) Leader(start gaddr.Addr) (ktypes.NodeID, uint64) {
	rl := l.region(start)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.leader, rl.term
}

// Progress returns the region's commit and last log indexes.
func (l *Log) Progress(start gaddr.Addr) (commit, last uint64) {
	rl := l.region(start)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.commit, rl.lastIndexLocked()
}

// Snapshot returns a deep copy of the region's committed state and
// whether the region has any committed log activity — what a freshly
// elected leader replays into its page directory.
func (l *Log) Snapshot(start gaddr.Addr) (RegionState, bool) {
	rl := l.region(start)
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.state.clone(), rl.commit > 0
}

// TailLen returns the number of retained entries across all regions.
func (l *Log) TailLen() int { return int(l.tail.Load()) }
