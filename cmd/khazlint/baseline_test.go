package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaselineFile(t *testing.T, entries []jsonFinding) string {
	t.Helper()
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestApplyBaselineStaleEntries(t *testing.T) {
	findings := []jsonFinding{
		{Analyzer: "lockorder", File: "a.go", Line: 10, Message: "cycle"},
		{Analyzer: "erricheck", File: "b.go", Line: 20, Message: "dropped error"},
	}
	path := writeBaselineFile(t, []jsonFinding{
		// Still matched, at a different line: baselines ignore position.
		{Analyzer: "lockorder", File: "a.go", Line: 99, Message: "cycle"},
		// The finding this entry excused was fixed: stale.
		{Analyzer: "deferunlock", File: "c.go", Line: 5, Message: "leaked lock"},
	})

	fresh, suppressed, stale, err := applyBaseline(findings, path)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", suppressed)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "erricheck" {
		t.Fatalf("fresh = %+v, want the erricheck finding only", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "deferunlock" {
		t.Fatalf("stale = %+v, want the deferunlock entry", stale)
	}
}

func TestApplyBaselineDuplicateBudget(t *testing.T) {
	// Two identical findings, one baseline entry: the entry excuses
	// exactly one; the second finding is fresh, and nothing is stale.
	findings := []jsonFinding{
		{Analyzer: "erricheck", File: "a.go", Line: 1, Message: "dropped error"},
		{Analyzer: "erricheck", File: "a.go", Line: 2, Message: "dropped error"},
	}
	path := writeBaselineFile(t, []jsonFinding{
		{Analyzer: "erricheck", File: "a.go", Line: 1, Message: "dropped error"},
	})
	fresh, suppressed, stale, err := applyBaseline(findings, path)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 1 || len(fresh) != 1 || len(stale) != 0 {
		t.Fatalf("suppressed=%d fresh=%d stale=%d, want 1/1/0", suppressed, len(fresh), len(stale))
	}

	// The converse: two entries, one finding — the extra entry is stale.
	path = writeBaselineFile(t, []jsonFinding{
		{Analyzer: "erricheck", File: "a.go", Line: 1, Message: "dropped error"},
		{Analyzer: "erricheck", File: "a.go", Line: 2, Message: "dropped error"},
	})
	_, suppressed, stale, err = applyBaseline(findings[:1], path)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 1 || len(stale) != 1 {
		t.Fatalf("suppressed=%d stale=%d, want 1 suppressed, 1 stale", suppressed, len(stale))
	}
}

func TestPruneBaselineRewritesInPlace(t *testing.T) {
	findings := []jsonFinding{
		{Analyzer: "lockorder", File: "a.go", Line: 10, Message: "cycle"},
	}
	path := writeBaselineFile(t, []jsonFinding{
		{Analyzer: "lockorder", File: "a.go", Line: 10, Message: "cycle"},
		{Analyzer: "framerelease", File: "gone.go", Line: 3, Message: "frame never released"},
	})
	if code := pruneBaseline(findings, path); code != 0 {
		t.Fatalf("pruneBaseline = %d, want 0", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []jsonFinding
	if err := json.Unmarshal(data, &kept); err != nil {
		t.Fatalf("pruned baseline is not valid JSON: %v", err)
	}
	if len(kept) != 1 || kept[0].Analyzer != "lockorder" {
		t.Fatalf("pruned baseline = %+v, want the live lockorder entry only", kept)
	}
	// After the prune, the baseline applies cleanly: nothing stale.
	_, _, stale, err := applyBaseline(findings, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("stale after prune = %+v, want none", stale)
	}
}

func TestPruneBaselineAllStaleWritesEmptyList(t *testing.T) {
	path := writeBaselineFile(t, []jsonFinding{
		{Analyzer: "erricheck", File: "gone.go", Line: 1, Message: "dropped error"},
	})
	if code := pruneBaseline(nil, path); code != 0 {
		t.Fatalf("pruneBaseline = %d, want 0", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []jsonFinding
	if err := json.Unmarshal(data, &kept); err != nil {
		t.Fatalf("pruned baseline is not valid JSON: %v (%q)", err, data)
	}
	if len(kept) != 0 {
		t.Fatalf("pruned baseline = %+v, want empty list", kept)
	}
}
