package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"khazana/internal/lint"
	"khazana/internal/lint/analysis"
	"khazana/internal/lint/loader"
)

// vetConfig is the JSON configuration the go command passes to a vet tool
// for each package, mirroring x/tools' unitchecker protocol. Only the
// fields khazlint consumes are declared.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck implements the go vet -vettool protocol: read the package
// config, type-check against the supplied export data, run the suite, and
// print findings to stderr. The go command treats a nonzero exit as a vet
// failure and relays stderr.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "khazlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// khazlint exports no facts, but the go command expects the output
	// file to exist after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "khazlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := typeCheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	findings, err := lint.Check([]*loader.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// typeCheckUnit parses and type-checks the unit described by cfg, using
// the export data files the go command already built for its imports.
func typeCheckUnit(cfg *vetConfig) (*loader.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	tcfg := &types.Config{
		Importer:  &mappedImporter{imp: imp, importMap: cfg.ImportMap},
		GoVersion: goVersion(cfg.GoVersion),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s: %v", cfg.ImportPath, typeErrs[0])
	}
	// khazlint checks production code only, matching the standalone
	// loader: the go command also hands vet the test variants of each
	// package, so drop _test.go files after type-checking (they are still
	// needed above for the package to type-check as a unit).
	prod := files[:0]
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			prod = append(prod, f)
		}
	}
	return &loader.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: prod, Types: tpkg, Info: info}, nil
}

// mappedImporter applies the config's ImportMap (vendoring, test
// variants) before consulting export data.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

// goVersion normalizes the config's language version ("1.22" or "go1.22")
// to the form go/types expects, dropping anything unparseable.
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	return v
}
