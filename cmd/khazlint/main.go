// Command khazlint runs Khazana's custom static-analysis suite: the
// analyzers enforcing the concurrency and error-handling invariants the
// daemon's correctness depends on (see README "Static analysis & CI").
// Three of them — lockorder's cycle detection, blockunderlock, and
// framerelease — are whole-program: they build a call graph over every
// loaded package and reason across function and package boundaries.
//
// Standalone:
//
//	go run ./cmd/khazlint ./...
//	khazlint -list
//	khazlint -only lockorder,erricheck ./...
//	khazlint -json ./...
//	khazlint -baseline lint-baseline.json ./...   (fail on new findings AND stale entries)
//	khazlint -write-baseline lint-baseline.json ./...
//	khazlint -prune-baseline lint-baseline.json ./... (drop stale entries in place)
//	khazlint -graph ./...                          (dump the call graph)
//
// As a go vet tool (the unitchecker protocol):
//
//	go build -o bin/khazlint ./cmd/khazlint
//	go vet -vettool=$PWD/bin/khazlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"khazana/internal/lint"
	"khazana/internal/lint/analysis"
)

func main() {
	// go vet handshake: `tool -V=full` must print a stable identity line
	// the build system can cache against.
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "--V=full") {
		printVersion()
		return
	}
	// go vet handshake: `tool -flags` must print a JSON description of the
	// tool's flags so the go command knows what it may pass through.
	// khazlint accepts none in vettool mode.
	if len(os.Args) == 2 && (os.Args[1] == "-flags" || os.Args[1] == "--flags") {
		fmt.Println("[]")
		return
	}

	listFlag := flag.Bool("list", false, "list analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonFlag := flag.Bool("json", false, "print findings as JSON")
	graphFlag := flag.Bool("graph", false, "dump the whole-program call graph and exit")
	baselineFlag := flag.String("baseline", "", "baseline file: suppress findings recorded there, fail on new findings and on stale entries")
	writeBaselineFlag := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	pruneBaselineFlag := flag.String("prune-baseline", "", "rewrite this baseline file dropping entries whose findings are fixed, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: khazlint [flags] [packages]\n       khazlint <file>.cfg   (go vet -vettool mode)\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers, err := selectAnalyzers(*onlyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	// go vet mode: a single argument naming a JSON config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, analyzers, options{
		jsonOut:       *jsonFlag,
		graph:         *graphFlag,
		baselinePath:  *baselineFlag,
		writeBaseline: *writeBaselineFlag,
		pruneBaseline: *pruneBaselineFlag,
	}))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion emits the `-V=full` identity line: name, version, and a
// content hash of the executable so the go command's vet cache is
// invalidated when the tool changes.
func printVersion() {
	name := "khazlint"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:32]
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}
