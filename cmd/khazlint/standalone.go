package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"khazana/internal/lint"
	"khazana/internal/lint/analysis"
	"khazana/internal/lint/loader"
)

// options are the standalone-mode output controls.
type options struct {
	jsonOut       bool   // print findings as JSON
	graph         bool   // dump the whole-program call graph and exit
	baselinePath  string // suppress findings recorded in this baseline
	writeBaseline string // write current findings to this path and exit
	pruneBaseline string // rewrite this baseline dropping stale entries and exit
}

// jsonFinding is the interchange form of a finding, used both for -json
// output and for the baseline file. Baseline matching ignores line and
// column — a finding that merely moved is not new.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// standalone loads the packages matching the patterns and runs the suite,
// printing findings in the conventional file:line:col format (or JSON).
func standalone(patterns []string, analyzers []*analysis.Analyzer, opts options) int {
	pkgs, err := loader.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	if opts.graph {
		return dumpGraph(pkgs)
	}
	findings, err := lint.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		}
	}
	if opts.writeBaseline != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "khazlint:", err)
			return 2
		}
		if err := os.WriteFile(opts.writeBaseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "khazlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "khazlint: wrote %d finding(s) to %s\n", len(out), opts.writeBaseline)
		return 0
	}
	if opts.pruneBaseline != "" {
		return pruneBaseline(out, opts.pruneBaseline)
	}
	staleCount := 0
	if opts.baselinePath != "" {
		var suppressed int
		var stale []jsonFinding
		out, suppressed, stale, err = applyBaseline(out, opts.baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "khazlint:", err)
			return 2
		}
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "khazlint: %d baselined finding(s) suppressed\n", suppressed)
		}
		// A baseline entry whose finding no longer exists is debt that was
		// paid but still on the books: it would silently excuse the next
		// regression at the same site. Fail until the baseline is pruned.
		for _, f := range stale {
			fmt.Fprintf(os.Stderr, "khazlint: stale baseline entry: [%s] %s: %s\n", f.Analyzer, f.File, f.Message)
		}
		if staleCount = len(stale); staleCount > 0 {
			fmt.Fprintf(os.Stderr, "khazlint: %d stale baseline entr%s — run `khazlint -prune-baseline %s <packages>` to drop them\n",
				staleCount, plural(staleCount, "y", "ies"), opts.baselinePath)
		}
	}
	if opts.jsonOut {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "khazlint:", err)
			return 2
		}
		fmt.Println(string(data))
	} else {
		for _, f := range out {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "khazlint: %d finding(s)\n", len(out))
		return 1
	}
	if staleCount > 0 {
		return 1
	}
	return 0
}

// baselineKey identifies a finding for baseline matching. Line and column
// are ignored — a finding that merely moved is not new.
func baselineKey(f jsonFinding) string { return f.Analyzer + "\x00" + f.File + "\x00" + f.Message }

// splitBaseline partitions the baseline entries at path into those still
// matched by a current finding (live) and those whose finding is gone
// (stale). Duplicate entries are matched one-for-one against duplicate
// findings, in file order.
func splitBaseline(findings []jsonFinding, path string) (live, stale []jsonFinding, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base []jsonFinding
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	remaining := make(map[string]int)
	for _, f := range findings {
		remaining[baselineKey(f)]++
	}
	for _, f := range base {
		if remaining[baselineKey(f)] > 0 {
			remaining[baselineKey(f)]--
			live = append(live, f)
			continue
		}
		stale = append(stale, f)
	}
	return live, stale, nil
}

// applyBaseline drops findings recorded in the baseline file, matching on
// analyzer, file, and message, and reports entries that no longer match
// anything (stale).
func applyBaseline(findings []jsonFinding, path string) ([]jsonFinding, int, []jsonFinding, error) {
	live, stale, err := splitBaseline(findings, path)
	if err != nil {
		return nil, 0, nil, err
	}
	// A baseline entry excuses as many findings as it was recorded for.
	budget := make(map[string]int)
	for _, f := range live {
		budget[baselineKey(f)]++
	}
	var fresh []jsonFinding
	suppressed := 0
	for _, f := range findings {
		if budget[baselineKey(f)] > 0 {
			budget[baselineKey(f)]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed, stale, nil
}

// pruneBaseline rewrites the baseline at path keeping only entries still
// matched by a current finding, dropping the stale ones in place.
func pruneBaseline(findings []jsonFinding, path string) int {
	live, stale, err := splitBaseline(findings, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	if len(stale) == 0 {
		fmt.Fprintf(os.Stderr, "khazlint: %s has no stale entries\n", path)
		return 0
	}
	if live == nil {
		live = []jsonFinding{}
	}
	data, err := json.MarshalIndent(live, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "khazlint: pruned %d stale entr%s from %s (%d kept)\n",
		len(stale), plural(len(stale), "y", "ies"), path, len(live))
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// dumpGraph prints the whole-program call graph, one edge per line,
// deterministically ordered.
func dumpGraph(pkgs []*loader.Package) int {
	if len(pkgs) == 0 {
		return 0
	}
	prog := analysis.NewProgram(pkgs[0].Fset, pkgs)
	var lines []string
	for _, n := range prog.Graph.Nodes() {
		for _, e := range n.Out {
			p := prog.Fset.Position(e.Site)
			lines = append(lines, fmt.Sprintf("%s -> %s [%s] %s:%d",
				n.ID, e.Callee.ID, e.Kind, relPath(p.Filename), p.Line))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Fprintf(os.Stderr, "khazlint: %d node(s), %d edge(s)\n", len(prog.Graph.Nodes()), len(lines))
	return 0
}

// relPath renders a position filename relative to the working directory
// when possible, keeping output and baselines machine-independent.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || len(rel) >= len(name) {
		return name
	}
	return rel
}
