package main

import (
	"fmt"
	"os"

	"khazana/internal/lint"
	"khazana/internal/lint/analysis"
	"khazana/internal/lint/loader"
)

// standalone loads the packages matching the patterns and runs the suite,
// printing findings in the conventional file:line:col format.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := loader.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	findings, err := lint.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "khazlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "khazlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
