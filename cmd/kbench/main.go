// kbench runs the Khazana reproduction experiments (E1–E20, see DESIGN.md
// §4) and prints one table per experiment: the paper-derived prediction,
// the measured rows, and whether the predicted shape held.
//
//	go run ./cmd/kbench                  # all experiments
//	go run ./cmd/kbench -run E3,E5       # a subset
//	go run ./cmd/kbench -latency 2ms     # WAN-ish links
//	go run ./cmd/kbench -markdown        # EXPERIMENTS.md-ready output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"khazana/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kbench", flag.ContinueOnError)
	latency := fs.Duration("latency", 200*time.Microsecond, "simulated one-way link latency")
	duration := fs.Duration("duration", 150*time.Millisecond, "throughput measurement window")
	runList := fs.String("run", "", "comma-separated experiment IDs (e.g. E1,E5); empty = all")
	markdown := fs.Bool("markdown", false, "emit Markdown tables (for EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Latency: *latency, Duration: *duration}

	all := map[string]func(experiments.Config) (experiments.Result, error){
		"E1": experiments.E1Figure1, "E2": experiments.E2Figure2,
		"E3": experiments.E3LookupPath, "E4": experiments.E4Scalability,
		"E5": experiments.E5Consistency, "E6": experiments.E6Replication,
		"E7": experiments.E7Filesystem, "E8": experiments.E8Objects,
		"E9": experiments.E9Failure, "E10": experiments.E10PageSize,
		"E11": experiments.E11StaleMap, "E12": experiments.E12Migration,
		"E13": experiments.E13BatchedTransfers, "E14": experiments.E14ZeroCopy,
		"E15": experiments.E15TelemetryOverhead,
		"E16": experiments.E16PrefetchAndWriteThrough,
		"E17": experiments.E17SnapshotScan,
		"E18": experiments.E18FanIn,
		"E19": experiments.E19Failover,
		"E20": experiments.E20RingLookup,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	selected := order
	if *runList != "" {
		selected = nil
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := all[id]; !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, id)
		}
	}

	fmt.Printf("khazana experiment harness — latency=%v window=%v\n\n", *latency, *duration)
	failures := 0
	for _, id := range selected {
		res, err := all[id](cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *markdown {
			printMarkdown(res)
		} else {
			printTable(res)
		}
		if !res.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not match the predicted shape", failures)
	}
	fmt.Println("all predicted shapes held")
	return nil
}

func printTable(r experiments.Result) {
	status := "PASS"
	if !r.Pass {
		status = "SHAPE MISMATCH"
	}
	fmt.Printf("%s — %s [%s]\n", r.ID, r.Title, status)
	fmt.Printf("  predicted: %s\n", r.Predicted)
	for _, row := range r.Rows {
		fmt.Printf("  %-34s %-28s %s\n", row.Name, row.Value, row.Detail)
	}
	fmt.Println()
}

func printMarkdown(r experiments.Result) {
	status := "✓ shape held"
	if !r.Pass {
		status = "✗ shape mismatch"
	}
	fmt.Printf("### %s — %s\n\n", r.ID, r.Title)
	fmt.Printf("*Predicted:* %s\n\n", r.Predicted)
	fmt.Println("| measurement | value | detail |")
	fmt.Println("|---|---|---|")
	for _, row := range r.Rows {
		fmt.Printf("| %s | %s | %s |\n", row.Name, row.Value, row.Detail)
	}
	fmt.Printf("\n**Result:** %s\n\n", status)
}
