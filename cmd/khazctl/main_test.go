package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"khazana"
)

// startDaemon boots a single-node TCP daemon for CLI tests.
func startDaemon(t *testing.T) *khazana.Node {
	t.Helper()
	node, err := khazana.StartNode(context.Background(), khazana.NodeConfig{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		StoreDir:   filepath.Join(t.TempDir(), "n1"),
		Genesis:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node
}

// capture runs the CLI and captures stdout.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	_ = w.Close()
	os.Stdout = old
	out := make([]byte, 64*1024)
	n, _ := r.Read(out)
	_ = r.Close()
	return string(out[:n]), runErr
}

func TestCLIFullLifecycle(t *testing.T) {
	node := startDaemon(t)
	base := []string{"-daemon", node.Addr(), "-daemon-id", "1", "-principal", "cli"}

	out, err := capture(t, append(base, "reserve", "8192")...)
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	addr := strings.TrimSpace(out)
	if _, perr := khazana.ParseAddr(addr); perr != nil {
		t.Fatalf("reserve printed %q: %v", addr, perr)
	}

	if _, err := capture(t, append(base, "alloc", addr)...); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if _, err := capture(t, append(base, "put", addr, "16", "hello khazctl")...); err != nil {
		t.Fatalf("put: %v", err)
	}
	out, err = capture(t, append(base, "get", addr, "16", "13")...)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !strings.Contains(out, "hello khazctl") {
		t.Fatalf("get printed %q", out)
	}
	out, err = capture(t, append(base, "attr", addr)...)
	if err != nil {
		t.Fatalf("attr: %v", err)
	}
	for _, want := range []string{"pagesize  4096", "protocol  crew", `owner     "cli"`, "allocated true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attr output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, append(base, "free", addr)...); err != nil {
		t.Fatalf("free: %v", err)
	}
	if _, err := capture(t, append(base, "unreserve", addr)...); err != nil {
		t.Fatalf("unreserve: %v", err)
	}
	if _, err := capture(t, append(base, "attr", addr)...); err == nil {
		t.Fatal("attr after unreserve should fail")
	}
}

func TestCLIErrors(t *testing.T) {
	node := startDaemon(t)
	base := []string{"-daemon", node.Addr(), "-daemon-id", "1"}
	cases := [][]string{
		{},                        // no command
		{"bogus"},                 // unknown command
		{"reserve"},               // missing size
		{"reserve", "notanumber"}, // bad size
		{"alloc"},                 // missing addr
		{"alloc", "zz"},           // bad addr
		{"put", "00:00", "0"},     // missing data
		{"get", "00:00", "0"},     // missing len
	}
	for i, c := range cases {
		if err := run(append(append([]string{}, base...), c...)); err == nil {
			t.Errorf("case %d (%v) should fail", i, c)
		}
	}
	// ACL enforcement end to end: alice's private region rejects bob.
	ctx := context.Background()
	start, err := node.Reserve(ctx, 4096, khazana.Attrs{ACL: khazana.PrivateACL("alice")}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	bob := []string{"-daemon", node.Addr(), "-daemon-id", "1", "-principal", "bob",
		"get", fmt.Sprint(start), "0", "4"}
	if err := run(bob); err == nil {
		t.Fatal("bob reading alice's region should fail")
	}
}

func TestCLIStatsAndMigrate(t *testing.T) {
	node := startDaemon(t)
	base := []string{"-daemon", node.Addr(), "-daemon-id", "1", "-principal", "cli"}

	out, err := capture(t, append(base, "reserve", "4096")...)
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimSpace(out)
	if _, err := capture(t, append(base, "alloc", addr)...); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, append(base, "stats")...)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out, "regions     1 homed here") {
		t.Fatalf("stats output:\n%s", out)
	}
	// Migrating to the only node is a no-op that must succeed.
	if _, err := capture(t, append(base, "migrate", addr, "1")...); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// Migrating to an unknown node fails.
	if _, err := capture(t, append(base, "migrate", addr, "42")...); err == nil {
		t.Fatal("migrate to unknown node should fail")
	}
}
