// khazctl is a command-line client for a running khazanad.
//
//	khazctl -daemon 127.0.0.1:7451 reserve 8192
//	khazctl -daemon 127.0.0.1:7451 alloc <addr>
//	khazctl -daemon 127.0.0.1:7451 put <addr> 0 "hello"
//	khazctl -daemon 127.0.0.1:7451 get <addr> 0 5
//	khazctl -daemon 127.0.0.1:7451 attr <addr>
//	khazctl -daemon 127.0.0.1:7451 stats
//	khazctl -daemon 127.0.0.1:7451 trace
//	khazctl -daemon 127.0.0.1:7451 ping [count]
//	khazctl -daemon 127.0.0.1:7451 migrate <addr> <node-id>
//	khazctl -daemon 127.0.0.1:7451 free <addr>
//	khazctl -daemon 127.0.0.1:7451 unreserve <addr>
//
// put and get wrap each access in a lock/unlock pair, presenting the
// paper's full operation sequence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"khazana"
	"khazana/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "khazctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("khazctl", flag.ContinueOnError)
	daemon := fs.String("daemon", "127.0.0.1:7450", "daemon TCP address")
	daemonID := fs.Uint("daemon-id", 1, "daemon node ID")
	clientID := fs.Uint("client-id", 0, "this client's node ID (default: derived from pid)")
	principal := fs.String("principal", "", "principal for access control")
	timeout := fs.Duration("timeout", 10*time.Second, "operation timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: khazctl [flags] <reserve|alloc|free|unreserve|put|get|attr|stats|trace|ping|migrate> ...")
	}
	cid := khazana.NodeID(*clientID)
	if cid == 0 {
		cid = khazana.ClientID(os.Getpid())
	}
	cli, err := khazana.Dial(cid, khazana.NodeID(*daemonID), *daemon, khazana.Principal(*principal))
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "reserve":
		if len(rest) != 1 {
			return fmt.Errorf("usage: reserve <size>")
		}
		size, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			return err
		}
		start, err := cli.Reserve(ctx, size, khazana.Attrs{})
		if err != nil {
			return err
		}
		fmt.Println(start)
		return nil
	case "alloc", "free", "unreserve":
		if len(rest) != 1 {
			return fmt.Errorf("usage: %s <addr>", cmd)
		}
		addr, err := khazana.ParseAddr(rest[0])
		if err != nil {
			return err
		}
		switch cmd {
		case "alloc":
			err = cli.Allocate(ctx, addr)
		case "free":
			err = cli.Free(ctx, addr)
		case "unreserve":
			err = cli.Unreserve(ctx, addr)
		}
		if err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	case "put":
		if len(rest) != 3 {
			return fmt.Errorf("usage: put <addr> <offset> <data>")
		}
		addr, err := khazana.ParseAddr(rest[0])
		if err != nil {
			return err
		}
		off, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			return err
		}
		data := []byte(rest[2])
		target := addr.MustAdd(off)
		lk, err := cli.Lock(ctx, khazana.Range{Start: target, Size: uint64(len(data))}, khazana.LockWrite)
		if err != nil {
			return err
		}
		defer lk.Unlock(ctx)
		if err := lk.Write(ctx, target, data); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes at %v\n", len(data), target)
		return nil
	case "get":
		if len(rest) != 3 {
			return fmt.Errorf("usage: get <addr> <offset> <len>")
		}
		addr, err := khazana.ParseAddr(rest[0])
		if err != nil {
			return err
		}
		off, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.ParseUint(rest[2], 10, 64)
		if err != nil {
			return err
		}
		target := addr.MustAdd(off)
		lk, err := cli.Lock(ctx, khazana.Range{Start: target, Size: n}, khazana.LockRead)
		if err != nil {
			return err
		}
		defer lk.Unlock(ctx)
		data, err := lk.Read(ctx, target, n)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", data)
		return nil
	case "attr":
		if len(rest) != 1 {
			return fmt.Errorf("usage: attr <addr>")
		}
		addr, err := khazana.ParseAddr(rest[0])
		if err != nil {
			return err
		}
		d, err := cli.GetAttr(ctx, addr)
		if err != nil {
			return err
		}
		fmt.Printf("region    %v (+%d bytes)\n", d.Range.Start, d.Range.Size)
		fmt.Printf("pagesize  %d\n", d.Attrs.PageSize)
		fmt.Printf("protocol  %v (level %v)\n", d.Attrs.Protocol, d.Attrs.Level)
		fmt.Printf("replicas  min %d, homes %v\n", d.Attrs.MinReplicas, d.Home)
		fmt.Printf("owner     %q (world %v)\n", d.Attrs.ACL.Owner, d.Attrs.ACL.World)
		fmt.Printf("allocated %v, epoch %d\n", d.Allocated, d.Epoch)
		return nil
	case "stats":
		st, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("node        %v (members %v)\n", st.Node, st.Members)
		fmt.Printf("regions     %d homed here\n", st.HomedRegions)
		fmt.Printf("pages       %d in RAM, %d on disk\n", st.MemPages, st.DiskPages)
		fmt.Printf("lookups     %d (%d dir hits, %d cluster, %d tree walks)\n",
			st.Lookups, st.DirHits, st.ClusterHits, st.TreeWalks)
		fmt.Printf("locks       %d granted\n", st.LocksGranted)
		fmt.Printf("recovery    %d release retries, %d promotions\n",
			st.ReleaseRetries, st.Promotions)
		m, err := cli.Metrics(ctx)
		if err != nil {
			return err
		}
		counter := func(name string) int64 {
			for _, c := range m.Counters {
				if c.Name == name {
					return c.Value
				}
			}
			return 0
		}
		chains := "no version chains observed"
		for _, h := range m.Histograms {
			if h.Name == telemetry.MetricSnapshotChainLen && h.Count > 0 {
				chains = fmt.Sprintf("mean chain len %d over %d publishes", h.Sum/h.Count, h.Count)
			}
		}
		fmt.Printf("snapshots   %d reads, %d old frames reclaimed, %s\n",
			counter(telemetry.MetricSnapshotReads), counter(telemetry.MetricSnapshotReclaimed), chains)
		fmt.Printf("ring        %d one-hop lookups, %d rebalance moves, %d fallback walks\n",
			counter(telemetry.MetricRingLookups), counter(telemetry.MetricRingRebalanceMoves),
			counter(telemetry.MetricRingFallbackWalks))
		gauge := func(name string) int64 {
			for _, g := range m.Gauges {
				if g.Name == name {
					return g.Value
				}
			}
			return 0
		}
		fmt.Printf("transport   %d conns open, %d requests in flight, %d bytes in, %d bytes out\n",
			gauge(telemetry.MetricTransportConnsOpen), gauge(telemetry.MetricTransportInflight),
			counter(telemetry.MetricTransportBytesIn), counter(telemetry.MetricTransportBytesOut))
		commit := "no commits observed"
		for _, h := range m.Histograms {
			if h.Name == telemetry.MetricReplCommitLatency && h.Count > 0 {
				commit = fmt.Sprintf("mean commit %v over %d appends", time.Duration(h.Sum/h.Count), h.Count)
			}
		}
		fmt.Printf("replog      %d entries tailed, %d elections, %d failovers, %d degraded commits, %s\n",
			gauge(telemetry.MetricReplLogLen), counter(telemetry.MetricReplElections),
			counter(telemetry.MetricReplFailovers), counter(telemetry.MetricReplDegradedCommits), commit)
		fmt.Printf("failover    %d ad-hoc home takeovers, %d replica repairs\n",
			counter(telemetry.MetricHomePromotions), counter(telemetry.MetricReplicaRepairs))
		fmt.Println("metrics")
		for _, c := range m.Counters {
			fmt.Printf("  %-40s %d\n", c.Name, c.Value)
		}
		for _, g := range m.Gauges {
			fmt.Printf("  %-40s %d\n", g.Name, g.Value)
		}
		for _, h := range m.Histograms {
			mean := uint64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Printf("  %-40s count=%d mean=%d\n", h.Name, h.Count, mean)
		}
		return nil
	case "trace":
		spans, err := cli.Traces(ctx)
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			fmt.Println("no spans recorded")
			return nil
		}
		fmt.Printf("%-16s %-8s %-8s %-5s %-10s %s\n", "TRACE", "SPAN", "PARENT", "NODE", "DURATION", "NAME")
		for _, s := range spans {
			parent := "-"
			if s.Parent != 0 {
				parent = fmt.Sprintf("%08x", s.Parent)
			}
			fmt.Printf("%016x %08x %-8s %-5d %-10v %s\n",
				s.Trace, s.Span, parent, s.Node, time.Duration(s.DurationNs), s.Name)
		}
		return nil
	case "ping":
		count := 3
		if len(rest) == 1 {
			c, err := strconv.Atoi(rest[0])
			if err != nil || c < 1 {
				return fmt.Errorf("usage: ping [count]")
			}
			count = c
		} else if len(rest) > 1 {
			return fmt.Errorf("usage: ping [count]")
		}
		fmt.Printf("%-5s %-6s %s\n", "SEQ", "NODE", "RTT")
		var total time.Duration
		for i := 0; i < count; i++ {
			rtt, err := cli.Ping(ctx)
			if err != nil {
				return err
			}
			total += rtt
			fmt.Printf("%-5d %-6d %v\n", i+1, *daemonID, rtt)
		}
		fmt.Printf("avg %v over %d pings\n", total/time.Duration(count), count)
		return nil
	case "migrate":
		if len(rest) != 2 {
			return fmt.Errorf("usage: migrate <addr> <node-id>")
		}
		addr, err := khazana.ParseAddr(rest[0])
		if err != nil {
			return err
		}
		target, err := strconv.ParseUint(rest[1], 10, 32)
		if err != nil {
			return err
		}
		if err := cli.Migrate(ctx, addr, khazana.NodeID(target)); err != nil {
			return err
		}
		fmt.Printf("region %v migrated to node %d\n", addr, target)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
