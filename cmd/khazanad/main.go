// khazanad is a standalone Khazana daemon over TCP.
//
// A three-node deployment on one machine:
//
//	khazanad -id 1 -listen 127.0.0.1:7451 -store /tmp/kz1 -genesis
//	khazanad -id 2 -listen 127.0.0.1:7452 -store /tmp/kz2 \
//	         -manager 1 -peers 1=127.0.0.1:7451
//	khazanad -id 3 -listen 127.0.0.1:7453 -store /tmp/kz3 \
//	         -manager 1 -peers 1=127.0.0.1:7451,2=127.0.0.1:7452
//
// Then drive it with khazctl.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"khazana"
	"khazana/internal/ktypes"
	"khazana/internal/telemetry"
	"khazana/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("khazanad", flag.ContinueOnError)
	id := fs.Uint("id", 0, "node ID (>= 1, required)")
	listen := fs.String("listen", "127.0.0.1:7450", "TCP listen address")
	store := fs.String("store", "", "disk-tier directory (required)")
	manager := fs.Uint("manager", 0, "cluster manager node ID (default: self)")
	mapHome := fs.Uint("map-home", 0, "address map home node ID (default: manager)")
	genesis := fs.Bool("genesis", false, "initialize the address map (exactly one node)")
	peers := fs.String("peers", "", "comma-separated peer addresses: id=host:port,...")
	memPages := fs.Int("mem-pages", 0, "RAM page-cache bound (0 = default)")
	heartbeat := fs.Duration("heartbeat", time.Second, "heartbeat interval (0 disables)")
	retry := fs.Duration("retry", time.Second, "release retry interval (0 disables)")
	replica := fs.Duration("replica", 2*time.Second, "replica maintenance interval (0 disables)")
	debugAddr := fs.String("debug-addr", "", "HTTP debug listener (/metrics, /traces, /debug/pprof); empty disables")
	serialTransport := fs.Bool("serial-transport", false, "use the legacy serial TCP protocol for outbound requests (mixed-version clusters)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == 0 {
		return fmt.Errorf("-id is required")
	}
	if *store == "" {
		return fmt.Errorf("-store is required")
	}

	var topts []transport.TCPOption
	if *serialTransport {
		topts = append(topts, transport.WithSerialTransport())
	}
	tcp, err := transport.NewTCP(ktypes.NodeID(*id), *listen, topts...)
	if err != nil {
		return err
	}
	if *peers != "" {
		for _, spec := range strings.Split(*peers, ",") {
			idStr, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("bad peer spec %q (want id=host:port)", spec)
			}
			pid, err := strconv.ParseUint(idStr, 10, 32)
			if err != nil {
				return fmt.Errorf("bad peer id %q: %v", idStr, err)
			}
			tcp.AddPeer(ktypes.NodeID(pid), addr)
		}
	}

	node, err := khazana.StartNode(context.Background(), khazana.NodeConfig{
		ID:                khazana.NodeID(*id),
		Transport:         tcp,
		StoreDir:          *store,
		MemPages:          *memPages,
		ClusterManager:    khazana.NodeID(*manager),
		MapHome:           khazana.NodeID(*mapHome),
		Genesis:           *genesis,
		HeartbeatInterval: *heartbeat,
		RetryInterval:     *retry,
		ReplicaInterval:   *replica,
	})
	if err != nil {
		_ = tcp.Close()
		return err
	}
	log.Printf("khazanad node %d listening on %s (store %s, genesis=%v)",
		*id, tcp.Addr(), *store, *genesis)

	var debugSrv *http.Server
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			_ = node.Close()
			_ = tcp.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(node)}
		go func() {
			if serr := debugSrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				log.Printf("khazanad debug listener: %v", serr)
			}
		}()
		log.Printf("khazanad node %d debug listener on http://%s", *id, ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("khazanad node %d shutting down", *id)
	if debugSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = debugSrv.Shutdown(shutCtx)
		cancel()
	}
	err = node.Close()
	if cerr := tcp.Close(); err == nil {
		err = cerr
	}
	return err
}

// debugMux builds the daemon's debug/export surface: metrics in Prometheus
// text (default) or JSON (?format=json), the trace-span ring, and pprof.
func debugMux(node *khazana.Node) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := node.Core().MetricsSnapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(snap); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := telemetry.WritePrometheus(w, snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := node.Core().TraceSpans()
		if spans == nil {
			spans = []telemetry.SpanRecord{}
		}
		if err := json.NewEncoder(w).Encode(spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
