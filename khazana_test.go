package khazana

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"khazana/internal/transport"
)

func newTestCluster(t *testing.T, n int, opts ...ClusterOption) *Cluster {
	t.Helper()
	opts = append([]ClusterOption{WithStoreDir(t.TempDir())}, opts...)
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestQuickstartFlow(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, 8192, Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	lk, err := n1.Lock(ctx, Range{Start: start, Size: 8192}, LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("global memory")); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Any node can read it (location transparency).
	for i := 2; i <= 3; i++ {
		rl, err := c.Node(i).Lock(ctx, Range{Start: start, Size: 8192}, LockRead, "bob")
		if err != nil {
			t.Fatalf("node %d lock: %v", i, err)
		}
		got, err := rl.Read(start, 13)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "global memory" {
			t.Fatalf("node %d read %q", i, got)
		}
		_ = rl.Unlock(ctx)
	}
}

func TestLockAccessors(t *testing.T) {
	c := newTestCluster(t, 1)
	ctx := context.Background()
	n := c.Node(1)
	start, _ := n.Reserve(ctx, 4096, Attrs{}, "")
	_ = n.Allocate(ctx, start, "")
	lk, err := n.Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Unlock(ctx)
	if lk.ID() == 0 {
		t.Error("lock ID should be nonzero")
	}
	if lk.Mode() != LockWrite {
		t.Errorf("mode = %v", lk.Mode())
	}
	if lk.Range().Start != start {
		t.Errorf("range = %v", lk.Range())
	}
}

func TestAddNodeDynamically(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	start, _ := c.Node(1).Reserve(ctx, 4096, Attrs{}, "")
	_ = c.Node(1).Allocate(ctx, start, "")
	lk, _ := c.Node(1).Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "")
	_ = lk.Write(start, []byte("pre-join"))
	_ = lk.Unlock(ctx)

	// A node that joins later can read existing state.
	n3, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	rl, err := n3.Lock(ctx, Range{Start: start, Size: 4096}, LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := rl.Read(start, 8)
	_ = rl.Unlock(ctx)
	if string(got) != "pre-join" {
		t.Fatalf("late joiner read %q", got)
	}
}

func TestClusterCrashRestartHelpers(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	start, _ := c.Node(2).Reserve(ctx, 4096, Attrs{}, "")
	_ = c.Node(2).Allocate(ctx, start, "")

	c.Crash(2)
	_, err := c.Node(3).Lock(ctx, Range{Start: start, Size: 4096}, LockRead, "")
	if err == nil {
		t.Fatal("lock against crashed single home should fail")
	}
	c.Restart(2)
	lk, err := c.Node(3).Lock(ctx, Range{Start: start, Size: 4096}, LockRead, "")
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	_ = lk.Unlock(ctx)
}

func TestInprocClientSessions(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	tr, err := c.Network.Attach(ClientID(1))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tr, 2, "carol")
	start, err := cli.Reserve(ctx, 4096, Attrs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Allocate(ctx, start); err != nil {
		t.Fatal(err)
	}
	lk, err := cli.Lock(ctx, Range{Start: start, Size: 4096}, LockWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(ctx, start, []byte("client data")); err != nil {
		t.Fatal(err)
	}
	got, err := lk.Read(ctx, start, 11)
	if err != nil || string(got) != "client data" {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	d, err := cli.GetAttr(ctx, start)
	if err != nil || d.Attrs.ACL.Owner != "carol" {
		t.Fatalf("attr = %+v, %v", d, err)
	}
	attrs := d.Attrs
	attrs.MinReplicas = 2
	if err := cli.SetAttr(ctx, start, attrs); err != nil {
		t.Fatal(err)
	}
	if err := cli.Free(ctx, start); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unreserve(ctx, start); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDeploymentEndToEnd(t *testing.T) {
	// A real two-daemon TCP deployment plus a TCP client, proving the
	// full wire path. This is the standalone khazanad configuration.
	ctx := context.Background()
	dir := t.TempDir()

	n1, err := StartNode(ctx, NodeConfig{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		StoreDir:   filepath.Join(dir, "n1"),
		Genesis:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	// Transport first so node 1's address can be registered before the
	// daemon joins the cluster.
	tr2, err := transport.NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr2.AddPeer(1, n1.Addr())
	n2, err := StartNode(ctx, NodeConfig{
		ID:             2,
		Transport:      tr2,
		StoreDir:       filepath.Join(dir, "n2"),
		ClusterManager: 1,
		MapHome:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, tr2.Addr())

	start, err := n2.Reserve(ctx, 4096, Attrs{}, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Allocate(ctx, start, "tcp"); err != nil {
		t.Fatal(err)
	}
	lk, err := n2.Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	_ = lk.Write(start, []byte("over tcp"))
	_ = lk.Unlock(ctx)

	// Remote TCP client reads via node 1.
	cli, err := Dial(ClientID(7), 1, n1.Addr(), "tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rl, err := cli.Lock(ctx, Range{Start: start, Size: 4096}, LockRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rl.Read(ctx, start, 8)
	if err != nil || string(got) != "over tcp" {
		t.Fatalf("tcp client read %q, %v", got, err)
	}
	_ = rl.Unlock(ctx)
}

func TestParseAddrRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	ctx := context.Background()
	start, _ := c.Node(1).Reserve(ctx, 4096, Attrs{}, "")
	parsed, err := ParseAddr(start.String())
	if err != nil || parsed != start {
		t.Fatalf("ParseAddr(%q) = %v, %v", start.String(), parsed, err)
	}
}

func TestBackgroundLoopsRun(t *testing.T) {
	c := newTestCluster(t, 3, WithBackground(20*time.Millisecond, 20*time.Millisecond, 20*time.Millisecond))
	ctx := context.Background()
	start, err := c.Node(2).Reserve(ctx, 4096, Attrs{MinReplicas: 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(2).Allocate(ctx, start, ""); err != nil {
		t.Fatal(err)
	}
	lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = lk.Write(start, []byte("bg"))
	_ = lk.Unlock(ctx)

	// Replica maintenance should recruit a second home automatically.
	deadline := time.Now().Add(3 * time.Second)
	for {
		d, err := c.Node(2).GetAttr(ctx, start)
		if err == nil && len(d.Home) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica maintenance never recruited a second home: %+v", d)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestManyRegionsManyNodes(t *testing.T) {
	c := newTestCluster(t, 4)
	ctx := context.Background()
	type reg struct {
		start Addr
		owner int
	}
	var regs []reg
	for i := 0; i < 40; i++ {
		owner := i%c.Len() + 1
		start, err := c.Node(owner).Reserve(ctx, 4096, Attrs{}, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Node(owner).Allocate(ctx, start, ""); err != nil {
			t.Fatal(err)
		}
		lk, err := c.Node(owner).Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "")
		if err != nil {
			t.Fatal(err)
		}
		_ = lk.Write(start, []byte(fmt.Sprintf("region-%03d", i)))
		_ = lk.Unlock(ctx)
		regs = append(regs, reg{start, owner})
	}
	// Every region is readable from every node.
	for i, r := range regs {
		reader := (r.owner % c.Len()) + 1 // a different node
		lk, err := c.Node(reader).Lock(ctx, Range{Start: r.start, Size: 4096}, LockRead, "")
		if err != nil {
			t.Fatalf("region %d from node %d: %v", i, reader, err)
		}
		got, _ := lk.Read(r.start, 10)
		_ = lk.Unlock(ctx)
		want := fmt.Sprintf("region-%03d", i)
		if !bytes.Equal(got, []byte(want)) {
			t.Fatalf("region %d = %q, want %q", i, got, want)
		}
	}
}

func TestCoarseSerialTCPEndToEnd(t *testing.T) {
	// A daemon running both E18 baselines at once — CoarseNodeState
	// (all lock-context and retry state on one mutex) and the legacy
	// serial transport — serving concurrent serial TCP clients. The
	// baselines must stay correct, not just slow: contended write locks
	// on one shared page and per-client private regions all resolve
	// through the coarse path over real sockets.
	ctx := context.Background()
	n1, err := StartNode(ctx, NodeConfig{
		ID:              1,
		ListenAddr:      "127.0.0.1:0",
		StoreDir:        filepath.Join(t.TempDir(), "n1"),
		Genesis:         true,
		CoarseNodeState: true,
		SerialTransport: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	const clients = 4
	const cycles = 8
	clis := make([]*Client, clients)
	for i := 0; i < clients; i++ {
		tr, err := transport.NewTCP(ClientID(10+i), "127.0.0.1:0", transport.WithSerialTransport())
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.AddPeer(1, n1.Addr())
		clis[i] = NewClient(tr, 1, "bench")
	}

	shared, err := clis[0].Reserve(ctx, 4096, Attrs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := clis[0].Allocate(ctx, shared); err != nil {
		t.Fatal(err)
	}
	private := make([]Addr, clients)
	for i := range private {
		start, err := clis[i].Reserve(ctx, 4096, Attrs{})
		if err != nil {
			t.Fatal(err)
		}
		if err := clis[i].Allocate(ctx, start); err != nil {
			t.Fatal(err)
		}
		private[i] = start
	}

	// Each client hammers its private region and a distinct 64-byte slot
	// of the shared page; the shared page's write locks contend, so every
	// cycle serializes through the single coarse lock-context shard.
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := clis[i]
			for j := 0; j < cycles; j++ {
				payload := []byte(fmt.Sprintf("c%02d-%04d", i, j))
				lk, err := cli.Lock(ctx, Range{Start: private[i], Size: 4096}, LockWrite)
				if err == nil {
					if werr := lk.Write(ctx, private[i], payload); werr != nil {
						err = werr
					}
					if uerr := lk.Unlock(ctx); err == nil {
						err = uerr
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("cycle %d private: %w", j, err)
					return
				}
				slot := shared.MustAdd(uint64(64 * i))
				lk, err = cli.Lock(ctx, Range{Start: shared, Size: 4096}, LockWrite)
				if err == nil {
					if werr := lk.Write(ctx, slot, payload); werr != nil {
						err = werr
					}
					if uerr := lk.Unlock(ctx); err == nil {
						err = uerr
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("cycle %d shared: %w", j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every private region and every shared slot holds its writer's
	// final cycle; a cross client (not the writer) reads each back.
	for i := 0; i < clients; i++ {
		want := fmt.Sprintf("c%02d-%04d", i, cycles-1)
		reader := clis[(i+1)%clients]
		lk, err := reader.Lock(ctx, Range{Start: private[i], Size: 4096}, LockRead)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lk.Read(ctx, private[i], uint64(len(want)))
		_ = lk.Unlock(ctx)
		if err != nil || string(got) != want {
			t.Fatalf("private region %d = %q (%v), want %q", i, got, err, want)
		}
		lk, err = reader.Lock(ctx, Range{Start: shared, Size: 4096}, LockRead)
		if err != nil {
			t.Fatal(err)
		}
		got, err = lk.Read(ctx, shared.MustAdd(uint64(64*i)), uint64(len(want)))
		_ = lk.Unlock(ctx)
		if err != nil || string(got) != want {
			t.Fatalf("shared slot %d = %q (%v), want %q", i, got, err, want)
		}
	}

	st, err := clis[0].Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * clients * cycles); st.LocksGranted < want {
		t.Fatalf("daemon granted %d locks, want >= %d", st.LocksGranted, want)
	}
}
