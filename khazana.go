// Package khazana is the public client library for Khazana, a distributed
// service exporting the abstraction of a flat, distributed, persistent,
// globally shared store (Carter, Ranganathan, Susarla — "Khazana: An
// Infrastructure for Building Distributed Services", ICDCS 1998).
//
// Applications allocate space in global memory much like normal memory,
// except regions are addressed with 128-bit identifiers. The operation set
// mirrors the paper (§2):
//
//	start, _ := node.Reserve(ctx, size, khazana.Attrs{}, "alice")
//	_ = node.Allocate(ctx, start, "alice")
//	lk, _ := node.Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockWrite, "alice")
//	_ = lk.Write(start, []byte("hello"))
//	data, _ := lk.Read(start, 5)
//	_ = lk.Unlock(ctx)
//
// Khazana handles replication, consistency management, fault recovery,
// access control, and location management underneath; per-region
// attributes select the consistency protocol (strict CREW, release
// consistent, or eventual), the minimum replica count, and access control.
package khazana

import (
	"context"
	"fmt"
	"time"

	"khazana/internal/consistency"
	"khazana/internal/core"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
	"khazana/internal/transport"
)

// Core addressing and identity types.
type (
	// Addr is a 128-bit global address.
	Addr = gaddr.Addr
	// Range is a contiguous span of global address space.
	Range = gaddr.Range
	// NodeID identifies a Khazana daemon.
	NodeID = ktypes.NodeID
	// LockMode states the caller's access intention.
	LockMode = ktypes.LockMode
	// Principal identifies a client for access control.
	Principal = ktypes.Principal
	// Attrs are per-region attributes: page size, consistency level and
	// protocol, minimum replicas, and access control (§2).
	Attrs = region.Attrs
	// Descriptor is a region's descriptor.
	Descriptor = region.Descriptor
	// Protocol selects a consistency protocol.
	Protocol = region.Protocol
	// Level is the desired consistency level.
	Level = region.Level
	// ACL is a region access-control list.
	ACL = security.ACL
	// Perm is an ACL permission set.
	Perm = security.Perm
)

// Lock modes (§2: read-only, read-write, write-shared).
const (
	LockRead        = ktypes.LockRead
	LockWrite       = ktypes.LockWrite
	LockWriteShared = ktypes.LockWriteShared
)

// Consistency protocols (§3.3, §5).
const (
	CREW     = region.CREW
	Release  = region.Release
	Eventual = region.Eventual
)

// Consistency levels.
const (
	Strict  = region.Strict
	Relaxed = region.Relaxed
	Weak    = region.Weak
)

// ACL permissions.
const (
	PermRead  = security.PermRead
	PermWrite = security.PermWrite
	PermAdmin = security.PermAdmin
	PermAll   = security.PermAll
)

// DefaultPageSize is the default region page size (4 KB, §2).
const DefaultPageSize = region.DefaultPageSize

// OpenACL returns a world-accessible ACL.
func OpenACL() ACL { return security.Open() }

// PrivateACL returns an ACL accessible only to owner.
func PrivateACL(owner Principal) ACL { return security.Private(owner) }

// ParseAddr parses an address in the format produced by Addr.String.
func ParseAddr(s string) (Addr, error) { return gaddr.Parse(s) }

// NodeConfig configures one Khazana daemon.
type NodeConfig struct {
	// ID is the node identity (>= 1).
	ID NodeID
	// Transport connects the node to its peers; use Cluster for an
	// in-process deployment or ListenAddr for TCP.
	Transport transport.Transport
	// ListenAddr, when Transport is nil, starts a TCP transport bound
	// here (e.g. "127.0.0.1:7450").
	ListenAddr string
	// StoreDir is the disk-tier directory.
	StoreDir string
	// MemPages bounds the RAM page cache (0 = default).
	MemPages int
	// DiskPages bounds the disk page cache (0 = unbounded).
	DiskPages int
	// ClusterManager names the cluster manager node (defaults to ID:
	// this node manages itself).
	ClusterManager NodeID
	// MapHome names the home of the address map (defaults to the
	// cluster manager).
	MapHome NodeID
	// Genesis initializes the global address map; set on exactly one
	// node per deployment.
	Genesis bool
	// HeartbeatInterval drives liveness reporting (0 disables).
	HeartbeatInterval time.Duration
	// RetryInterval drives background release retries (0 disables).
	RetryInterval time.Duration
	// ReplicaInterval drives minimum-replica maintenance (0 disables).
	ReplicaInterval time.Duration
	// MigrationInterval drives the load-aware auto-migration policy:
	// regions whose consistency traffic is dominated by one remote node
	// migrate to it (0 disables).
	MigrationInterval time.Duration
	// Registry supplies custom consistency protocols (nil = built-ins).
	Registry *consistency.Registry
	// PerPageTransfers disables the batched multi-page lock/fetch and
	// release pipeline, issuing one RPC per page instead. Benchmarks use
	// it to compare the two paths; the default (false) batches.
	PerPageTransfers bool
	// NoReadAhead disables adaptive read-ahead grant pipelining (the
	// speculative grants a home piggybacks onto sequential readers'
	// lock batches). Benchmarks use it as the E16 baseline; the default
	// (false) speculates.
	NoReadAhead bool
	// PerPageReplication disables the batched replication write-through,
	// pushing one RPC per page per replica instead of one batch per
	// replica (the E16 baseline).
	PerPageReplication bool
	// CoarseNodeState collapses the node's sharded lock-context and
	// retry-queue state onto a single mutex, restoring pre-sharding
	// behavior (the E18 baseline).
	CoarseNodeState bool
	// SerialTransport, when ListenAddr starts the TCP transport, selects
	// the legacy serial protocol for this node's outbound requests (one
	// in-flight request per pooled connection) instead of the default
	// multiplexed one. Inbound connections always auto-detect the
	// client's protocol.
	SerialTransport bool
	// NoRing disables the consistent-hashing descriptor partition: cold
	// lookups skip the one-hop ring stage and fall straight to the
	// paper's cluster-hint / tree-walk path (the E20 baseline).
	NoRing bool
	// NoTelemetry disables the metrics registry and trace recorder; the
	// overhead benchmarks use it to measure the instrumented paths bare.
	NoTelemetry bool
	// Tracer observes Figure-2 protocol steps (diagnostics).
	Tracer func(step string)
}

// Node is a running Khazana daemon plus its client library.
type Node struct {
	core *core.Node
	tr   transport.Transport
	// ownTransport reports whether Close should close the transport.
	ownTransport bool
}

// StartNode creates and starts a daemon.
func StartNode(ctx context.Context, cfg NodeConfig) (*Node, error) {
	tr := cfg.Transport
	own := false
	if tr == nil {
		if cfg.ListenAddr == "" {
			return nil, fmt.Errorf("khazana: Transport or ListenAddr required")
		}
		var opts []transport.TCPOption
		if cfg.SerialTransport {
			opts = append(opts, transport.WithSerialTransport())
		}
		tcp, err := transport.NewTCP(cfg.ID, cfg.ListenAddr, opts...)
		if err != nil {
			return nil, err
		}
		tr = tcp
		own = true
	}
	node, err := core.NewNode(core.Config{
		ID:                 cfg.ID,
		Transport:          tr,
		StoreDir:           cfg.StoreDir,
		MemPages:           cfg.MemPages,
		DiskPages:          cfg.DiskPages,
		ClusterManager:     cfg.ClusterManager,
		MapHome:            cfg.MapHome,
		Genesis:            cfg.Genesis,
		HeartbeatInterval:  cfg.HeartbeatInterval,
		RetryInterval:      cfg.RetryInterval,
		ReplicaInterval:    cfg.ReplicaInterval,
		MigrationInterval:  cfg.MigrationInterval,
		Registry:           cfg.Registry,
		PerPageTransfers:   cfg.PerPageTransfers,
		NoReadAhead:        cfg.NoReadAhead,
		PerPageReplication: cfg.PerPageReplication,
		CoarseNodeState:    cfg.CoarseNodeState,
		NoRing:             cfg.NoRing,
		NoTelemetry:        cfg.NoTelemetry,
		Tracer:             cfg.Tracer,
	})
	if err != nil {
		if own {
			_ = tr.Close()
		}
		return nil, err
	}
	if err := node.Start(ctx); err != nil {
		if own {
			_ = tr.Close()
		}
		return nil, err
	}
	return &Node{core: node, tr: tr, ownTransport: own}, nil
}

// Close stops the daemon.
func (n *Node) Close() error {
	err := n.core.Close()
	if n.ownTransport {
		if cerr := n.tr.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ID returns this node's identity.
func (n *Node) ID() NodeID { return n.core.ID() }

// Core exposes the underlying daemon for diagnostics, experiments, and
// advanced integrations.
func (n *Node) Core() *core.Node { return n.core }

// Addr returns the TCP listen address when the node runs over TCP.
func (n *Node) Addr() string {
	if t, ok := n.tr.(*transport.TCP); ok {
		return t.Addr()
	}
	return ""
}

// AddPeer registers a TCP peer's address (TCP deployments only).
func (n *Node) AddPeer(id NodeID, addr string) {
	if t, ok := n.tr.(*transport.TCP); ok {
		t.AddPeer(id, addr)
	}
}

// Reserve reserves a region of global address space (§2). The returned
// address is the region's identity.
func (n *Node) Reserve(ctx context.Context, size uint64, attrs Attrs, p Principal) (Addr, error) {
	return n.core.Reserve(ctx, size, attrs, p)
}

// Unreserve releases a region.
func (n *Node) Unreserve(ctx context.Context, start Addr, p Principal) error {
	return n.core.Unreserve(ctx, start, p)
}

// Allocate attaches physical storage to a reserved region (§2).
func (n *Node) Allocate(ctx context.Context, start Addr, p Principal) error {
	return n.core.Allocate(ctx, start, p)
}

// Free releases a region's physical storage, keeping the reservation.
func (n *Node) Free(ctx context.Context, start Addr, p Principal) error {
	return n.core.Free(ctx, start, p)
}

// GetAttr fetches the descriptor of the region containing addr.
func (n *Node) GetAttr(ctx context.Context, addr Addr) (*Descriptor, error) {
	return n.core.GetAttr(ctx, addr)
}

// SetAttr updates a region's attributes.
func (n *Node) SetAttr(ctx context.Context, start Addr, attrs Attrs, p Principal) error {
	return n.core.SetAttr(ctx, start, attrs, p)
}

// MigrateRegion hands the primary-home role for a region to another node
// (the mechanism behind the migration policies of §7).
func (n *Node) MigrateRegion(ctx context.Context, start Addr, newHome NodeID, p Principal) error {
	return n.core.MigrateRegion(ctx, start, newHome, p)
}

// Lock locks part of a region in the given mode and returns the lock
// context for subsequent reads and writes (§2).
func (n *Node) Lock(ctx context.Context, rng Range, mode LockMode, p Principal) (*Lock, error) {
	lc, err := n.core.Lock(ctx, rng, mode, p)
	if err != nil {
		return nil, err
	}
	return &Lock{node: n, lc: lc}, nil
}

// Lock is a granted lock context.
type Lock struct {
	node *Node
	lc   *core.LockContext
}

// ID returns the lock context identifier.
func (l *Lock) ID() uint64 { return l.lc.ID }

// Mode returns the granted mode.
func (l *Lock) Mode() LockMode { return l.lc.Mode }

// Range returns the locked range.
func (l *Lock) Range() Range { return l.lc.Range }

// Read copies count bytes starting at addr.
func (l *Lock) Read(addr Addr, count uint64) ([]byte, error) {
	return l.node.core.Read(l.lc, addr, count)
}

// ReadView returns count bytes starting at addr as a zero-copy view
// aliasing the locally cached page frame. The view must be treated as
// read-only and stays valid only until Unlock, which unpins the backing
// frame; callers needing the bytes longer must copy them or use Read.
// Requests spanning a page boundary fall back to the copying path.
func (l *Lock) ReadView(addr Addr, count uint64) ([]byte, error) {
	return l.node.core.ReadView(l.lc, addr, count)
}

// Write copies data into the locked range at addr.
func (l *Lock) Write(addr Addr, data []byte) error {
	return l.node.core.Write(l.lc, addr, data)
}

// Unlock releases the lock. Release-side failures are retried in the
// background and never surface here (§3.5).
func (l *Lock) Unlock(ctx context.Context) error {
	return l.node.core.Unlock(ctx, l.lc)
}

// Snapshot opens a snapshot context: a read-only view of the global
// store that never blocks on writers and is never invalidated by them.
// The first read pins a publish epoch at each page's home; every
// subsequent read observes the newest version committed at or before
// that cut, served from the home's version chain without touching the
// lock table. Close releases the pinned page frames.
//
//	snap := node.Snapshot("alice")
//	defer snap.Close()
//	view, _ := snap.View(ctx, start, 64) // zero-copy, valid until Close
//	data, _ := snap.Read(ctx, start, 64) // private copy
func (n *Node) Snapshot(p Principal) *Snapshot {
	return &Snapshot{node: n, sc: n.core.Snapshot(p)}
}

// Snapshot is an open snapshot context.
type Snapshot struct {
	node *Node
	sc   *core.SnapshotContext
}

// View returns count bytes starting at addr as a zero-copy view aliasing
// the snapshot's pinned page frame. The view must be treated as
// read-only and stays valid until Close; requests spanning a page
// boundary fall back to the copying path.
func (s *Snapshot) View(ctx context.Context, addr Addr, count uint64) ([]byte, error) {
	return s.sc.View(ctx, addr, count)
}

// Read copies count bytes starting at addr out of the snapshot. The
// result stays valid after Close.
func (s *Snapshot) Read(ctx context.Context, addr Addr, count uint64) ([]byte, error) {
	return s.sc.Read(ctx, addr, count)
}

// Close releases every page frame the snapshot pinned. Views handed out
// by View are invalid once Close returns.
func (s *Snapshot) Close() { s.sc.Close() }
