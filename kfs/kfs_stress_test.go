package kfs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"khazana"
)

func TestManyFilesManyMounts(t *testing.T) {
	c, fs1 := newFS(t, 3)
	ctx := context.Background()
	mounts := []*FS{fs1}
	for i := 2; i <= 3; i++ {
		m, err := Mount(ctx, c.Node(i), fs1.Super(), "fsadmin")
		if err != nil {
			t.Fatal(err)
		}
		mounts = append(mounts, m)
	}
	// Each mount creates files in its own directory concurrently.
	var wg sync.WaitGroup
	errs := make([]error, len(mounts))
	for i, m := range mounts {
		wg.Add(1)
		go func(i int, m *FS) {
			defer wg.Done()
			dir := fmt.Sprintf("/m%d", i)
			if err := m.Mkdir(ctx, dir); err != nil {
				errs[i] = err
				return
			}
			for j := 0; j < 8; j++ {
				f, err := m.Create(ctx, fmt.Sprintf("%s/f%d", dir, j))
				if err != nil {
					errs[i] = err
					return
				}
				payload := []byte(fmt.Sprintf("mount %d file %d", i, j))
				if _, err := f.WriteAt(ctx, payload, 0); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mount %d: %v", i, err)
		}
	}
	// Every mount sees everything.
	for vi, viewer := range mounts {
		root, err := viewer.ReadDir(ctx, "/")
		if err != nil {
			t.Fatal(err)
		}
		if len(root) != 3 {
			t.Fatalf("mount %d sees %d root entries", vi, len(root))
		}
		for i := range mounts {
			for j := 0; j < 8; j++ {
				f, err := viewer.Open(ctx, fmt.Sprintf("/m%d/f%d", i, j))
				if err != nil {
					t.Fatalf("mount %d open m%d/f%d: %v", vi, i, j, err)
				}
				got, err := f.ReadAll(ctx)
				if err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprintf("mount %d file %d", i, j)
				if string(got) != want {
					t.Fatalf("mount %d read %q, want %q", vi, got, want)
				}
			}
		}
	}
}

func TestDeepDirectoryTree(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	path := ""
	for depth := 0; depth < 12; depth++ {
		path += fmt.Sprintf("/d%d", depth)
		if err := fs.Mkdir(ctx, path); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
	leaf := path + "/leaf.txt"
	f, err := fs.Create(ctx, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, []byte("deep"), 0); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(ctx, leaf)
	if err != nil || info.Size != 4 {
		t.Fatalf("stat deep leaf = %+v, %v", info, err)
	}
}

func TestReadModifyWriteCycles(t *testing.T) {
	c, fs1 := newFS(t, 2)
	ctx := context.Background()
	fs2, err := Mount(ctx, c.Node(2), fs1.Super(), "fsadmin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs1.Create(ctx, "/ledger"); err != nil {
		t.Fatal(err)
	}
	f1, _ := fs1.Open(ctx, "/ledger")
	f2, _ := fs2.Open(ctx, "/ledger")

	// Alternate read-modify-write between the two mounts; each round
	// must observe the other's latest write (CREW inode + block locks).
	data := make([]byte, 8)
	files := []*File{f1, f2}
	for round := 0; round < 12; round++ {
		f := files[round%2]
		n, err := f.ReadAt(ctx, data, 0)
		if err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if round > 0 && n != 8 {
			t.Fatalf("round %d read %d bytes", round, n)
		}
		if round > 0 && int(data[0]) != round-1 {
			t.Fatalf("round %d observed %d, want %d", round, data[0], round-1)
		}
		out := bytes.Repeat([]byte{byte(round)}, 8)
		if _, err := f.WriteAt(ctx, out, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFilesystemSurvivesRestartOfHome(t *testing.T) {
	// kfs does nothing special for durability — persistence falls out of
	// Khazana's persistent store. Close and restart the entire (single
	// node) cluster directory... here we exercise the path through the
	// public API: write, Close the cluster node, reopen over the same
	// store dir.
	dir := t.TempDir()
	c, err := khazana.NewCluster(1, khazana.WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	super, err := Mkfs(ctx, c.Node(1), "fsadmin", khazana.Attrs{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(ctx, c.Node(1), super, "fsadmin")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(ctx, "/persistent.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, []byte("outlives the daemon"), 0); err != nil {
		t.Fatal(err)
	}
	c.Close() // clean shutdown persists everything

	c2, err := khazana.NewCluster(1, khazana.WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs2, err := Mount(ctx, c2.Node(1), super, "fsadmin")
	if err != nil {
		t.Fatalf("mount after restart: %v", err)
	}
	g, err := fs2.Open(ctx, "/persistent.txt")
	if err != nil {
		t.Fatalf("open after restart: %v", err)
	}
	got, err := g.ReadAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "outlives the daemon" {
		t.Fatalf("after restart read %q", got)
	}
}
