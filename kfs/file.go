package kfs

import (
	"context"
	"fmt"
	"io"

	"khazana"
	"khazana/internal/enc"
)

// File is an open file handle. Reads and writes find the Khazana address
// for the block, lock it in the appropriate mode, and execute the
// operation (§4.1).
type File struct {
	fs        *FS
	inodeAddr khazana.Addr
	name      string
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// InodeAddr returns the file's inode region address.
func (f *File) InodeAddr() khazana.Addr { return f.inodeAddr }

// Size returns the file's current size.
func (f *File) Size(ctx context.Context) (uint64, error) {
	ino, err := f.fs.readInode(ctx, f.inodeAddr)
	if err != nil {
		return 0, err
	}
	return ino.Size, nil
}

// ReadAt reads into p starting at offset off, returning the number of
// bytes read. Reads past EOF return io.EOF.
func (f *File) ReadAt(ctx context.Context, p []byte, off uint64) (int, error) {
	ino, err := f.fs.readInode(ctx, f.inodeAddr)
	if err != nil {
		return 0, err
	}
	return f.readAtWithInode(ctx, ino, p, off)
}

func (f *File) readAtWithInode(ctx context.Context, ino *inode, p []byte, off uint64) (int, error) {
	if ino.isDir() && f.name != "" {
		return 0, ErrIsDir
	}
	if off >= ino.Size {
		return 0, io.EOF
	}
	n := uint64(len(p))
	if off+n > ino.Size {
		n = ino.Size - off
	}
	var read uint64
	for read < n {
		idx := (off + read) / BlockSize
		blockOff := (off + read) % BlockSize
		chunk := BlockSize - blockOff
		if chunk > n-read {
			chunk = n - read
		}
		blockAddr, err := f.blockAddr(ctx, ino, idx, false)
		if err != nil {
			return int(read), err
		}
		if blockAddr.IsZero() {
			// Hole: reads as zeroes.
			for i := uint64(0); i < chunk; i++ {
				p[read+i] = 0
			}
		} else {
			data, err := f.fs.readRegion(ctx, blockAddr, blockOff, chunk)
			if err != nil {
				return int(read), err
			}
			copy(p[read:read+chunk], data)
		}
		read += chunk
	}
	if off+read >= ino.Size && read < uint64(len(p)) {
		return int(read), io.EOF
	}
	return int(read), nil
}

// WriteAt writes p at offset off, growing the file as needed.
func (f *File) WriteAt(ctx context.Context, p []byte, off uint64) (int, error) {
	// The inode region write lock serializes all metadata mutation for
	// this file cluster-wide.
	lk, err := f.fs.node.Lock(ctx, khazana.Range{Start: f.inodeAddr, Size: BlockSize}, khazana.LockWrite, f.fs.principal)
	if err != nil {
		return 0, err
	}
	defer lk.Unlock(ctx)
	ino, err := f.fs.readInodeLocked(lk, f.inodeAddr)
	if err != nil {
		return 0, err
	}
	if err := f.writeAtWithInode(ctx, ino, p, off); err != nil {
		return 0, err
	}
	if err := f.fs.writeInodeLocked(lk, f.inodeAddr, ino); err != nil {
		return 0, err
	}
	return len(p), nil
}

// writeAtWithInode writes data and updates ino in memory; the caller
// persists the inode.
func (f *File) writeAtWithInode(ctx context.Context, ino *inode, p []byte, off uint64) error {
	end := off + uint64(len(p))
	if end > MaxFileSize {
		return ErrFileTooLarge
	}
	var written uint64
	n := uint64(len(p))
	for written < n {
		idx := (off + written) / BlockSize
		blockOff := (off + written) % BlockSize
		chunk := BlockSize - blockOff
		if chunk > n-written {
			chunk = n - written
		}
		blockAddr, err := f.blockAddr(ctx, ino, idx, true)
		if err != nil {
			return err
		}
		if err := f.fs.writeRegion(ctx, blockAddr, blockOff, p[written:written+chunk]); err != nil {
			return err
		}
		written += chunk
	}
	if end > ino.Size {
		ino.Size = end
	}
	return nil
}

// Truncate resizes the file, deallocating block regions no longer needed
// (§4.1).
func (f *File) Truncate(ctx context.Context, size uint64) error {
	lk, err := f.fs.node.Lock(ctx, khazana.Range{Start: f.inodeAddr, Size: BlockSize}, khazana.LockWrite, f.fs.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)
	ino, err := f.fs.readInodeLocked(lk, f.inodeAddr)
	if err != nil {
		return err
	}
	if err := f.truncateWithInode(ctx, ino, size); err != nil {
		return err
	}
	return f.fs.writeInodeLocked(lk, f.inodeAddr, ino)
}

func (f *File) truncateWithInode(ctx context.Context, ino *inode, size uint64) error {
	if size > MaxFileSize {
		return ErrFileTooLarge
	}
	keep := (size + BlockSize - 1) / BlockSize
	total := (ino.Size + BlockSize - 1) / BlockSize
	for idx := keep; idx < total; idx++ {
		addr, err := f.blockAddr(ctx, ino, idx, false)
		if err != nil {
			return err
		}
		if addr.IsZero() {
			continue
		}
		if err := f.fs.node.Unreserve(ctx, addr, f.fs.principal); err != nil {
			return err
		}
		if err := f.setBlockAddr(ctx, ino, idx, khazana.Addr{}); err != nil {
			return err
		}
	}
	// Drop the indirect block itself when no longer needed.
	if keep <= DirectBlocks && !ino.Indirect.IsZero() {
		if err := f.fs.node.Unreserve(ctx, ino.Indirect, f.fs.principal); err != nil {
			return err
		}
		ino.Indirect = khazana.Addr{}
	}
	ino.Size = size
	return nil
}

// blockAddr resolves the region address of block idx, allocating it (and
// the indirect block) when create is set.
func (f *File) blockAddr(ctx context.Context, ino *inode, idx uint64, create bool) (khazana.Addr, error) {
	if idx < DirectBlocks {
		if ino.Direct[idx].IsZero() && create {
			addr, err := f.fs.allocRegion(ctx, BlockSize)
			if err != nil {
				return khazana.Addr{}, err
			}
			ino.Direct[idx] = addr
		}
		return ino.Direct[idx], nil
	}
	iidx := idx - DirectBlocks
	if iidx >= IndirectBlocks {
		return khazana.Addr{}, ErrFileTooLarge
	}
	if ino.Indirect.IsZero() {
		if !create {
			return khazana.Addr{}, nil
		}
		addr, err := f.fs.allocRegion(ctx, BlockSize)
		if err != nil {
			return khazana.Addr{}, err
		}
		ino.Indirect = addr
	}
	// Read the 16-byte slot for this index from the indirect block.
	slotOff := iidx * 16
	buf, err := f.fs.readRegion(ctx, ino.Indirect, slotOff, 16)
	if err != nil {
		return khazana.Addr{}, err
	}
	d := enc.NewDecoder(buf)
	cur := d.Addr()
	if cur.IsZero() && create {
		addr, err := f.fs.allocRegion(ctx, BlockSize)
		if err != nil {
			return khazana.Addr{}, err
		}
		e := enc.NewEncoder(16)
		e.Addr(addr)
		if err := f.fs.writeRegion(ctx, ino.Indirect, slotOff, e.Bytes()); err != nil {
			return khazana.Addr{}, err
		}
		return addr, nil
	}
	return cur, nil
}

// setBlockAddr clears or sets a block pointer (used by truncate).
func (f *File) setBlockAddr(ctx context.Context, ino *inode, idx uint64, addr khazana.Addr) error {
	if idx < DirectBlocks {
		ino.Direct[idx] = addr
		return nil
	}
	iidx := idx - DirectBlocks
	if iidx >= IndirectBlocks || ino.Indirect.IsZero() {
		return fmt.Errorf("kfs: bad indirect index %d", idx)
	}
	e := enc.NewEncoder(16)
	e.Addr(addr)
	return f.fs.writeRegion(ctx, ino.Indirect, iidx*16, e.Bytes())
}

// Append writes p at the end of the file.
func (f *File) Append(ctx context.Context, p []byte) (int, error) {
	lk, err := f.fs.node.Lock(ctx, khazana.Range{Start: f.inodeAddr, Size: BlockSize}, khazana.LockWrite, f.fs.principal)
	if err != nil {
		return 0, err
	}
	defer lk.Unlock(ctx)
	ino, err := f.fs.readInodeLocked(lk, f.inodeAddr)
	if err != nil {
		return 0, err
	}
	if err := f.writeAtWithInode(ctx, ino, p, ino.Size); err != nil {
		return 0, err
	}
	if err := f.fs.writeInodeLocked(lk, f.inodeAddr, ino); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadAll reads the whole file.
func (f *File) ReadAll(ctx context.Context) ([]byte, error) {
	ino, err := f.fs.readInode(ctx, f.inodeAddr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ino.Size)
	if ino.Size == 0 {
		return buf, nil
	}
	_, err = f.readAtWithInode(ctx, ino, buf, 0)
	if err == io.EOF {
		err = nil
	}
	return buf, err
}
