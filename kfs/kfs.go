// Package kfs is a wide-area distributed file system built on Khazana,
// reproducing §4.1 of the paper: "The filesystem treats the entire Khazana
// space as a single disk ... At the time of file system creation, the
// creator allocates a superblock and an inode for the root of the
// filesystem. Mounting this filesystem only requires the Khazana address
// of the superblock."
//
// Design points taken directly from the paper:
//
//   - Each inode is allocated as a region of its own.
//   - Each 4 KB file block is allocated into a separate region.
//   - Parameters at file-creation time select replica counts, consistency
//     level, and access modes per file.
//   - The same file system runs on a stand-alone node or distributed,
//     without kfs itself being aware of the difference: Khazana handles
//     consistency, replication, and location of the individual regions.
//   - New instances (mounts) can be started on any node without changes
//     to existing instances, enabling external load balancing.
package kfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"khazana"
	"khazana/internal/enc"
)

// Geometry and format constants.
const (
	// BlockSize is the file block size; each block is its own region
	// (§4.1).
	BlockSize = 4096
	// DirectBlocks is the number of block addresses stored directly in
	// an inode.
	DirectBlocks = 128
	// IndirectBlocks is the number of block addresses in the single
	// indirect block.
	IndirectBlocks = BlockSize / 16
	// MaxFileSize is the largest file this layout supports.
	MaxFileSize = (DirectBlocks + IndirectBlocks) * BlockSize

	superMagic = 0x4B465331 // "KFS1"
	inodeMagic = 0x4B464E44 // "KFND"

	// ModeDir marks directory inodes.
	ModeDir = 1 << 16
)

// Errors returned by the file system.
var (
	// ErrNotExist reports a missing path component.
	ErrNotExist = errors.New("kfs: file does not exist")
	// ErrExist reports a create over an existing name.
	ErrExist = errors.New("kfs: file already exists")
	// ErrNotDir reports a non-directory used as a directory.
	ErrNotDir = errors.New("kfs: not a directory")
	// ErrIsDir reports a directory used as a file.
	ErrIsDir = errors.New("kfs: is a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("kfs: directory not empty")
	// ErrFileTooLarge reports growth past MaxFileSize.
	ErrFileTooLarge = errors.New("kfs: file too large")
	// ErrBadSuperblock reports a mount of something that is not a kfs
	// superblock.
	ErrBadSuperblock = errors.New("kfs: bad superblock")
)

// FS is one mounted instance of the file system. Multiple instances on
// different nodes share state purely through Khazana.
type FS struct {
	node      *khazana.Node
	principal khazana.Principal
	super     khazana.Addr
	root      khazana.Addr
	// attrs are the default region attributes for new inodes and
	// blocks; per-file attributes can override them at creation time.
	attrs khazana.Attrs
}

// inode is the on-disk inode layout, one region per inode (§4.1).
type inode struct {
	Mode     uint32
	Size     uint64
	Direct   [DirectBlocks]khazana.Addr
	Indirect khazana.Addr
}

func (ino *inode) isDir() bool { return ino.Mode&ModeDir != 0 }

// DirEntry is one directory entry.
type DirEntry struct {
	Name  string
	Inode khazana.Addr
	IsDir bool
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  uint64
	IsDir bool
	Inode khazana.Addr
}

// Mkfs creates a new file system: a superblock region and an empty root
// directory inode. It returns the superblock address, the only thing a
// mount needs (§4.1).
func Mkfs(ctx context.Context, node *khazana.Node, principal khazana.Principal, attrs khazana.Attrs) (khazana.Addr, error) {
	fs := &FS{node: node, principal: principal, attrs: normalizeAttrs(attrs)}
	rootInode, err := fs.allocRegion(ctx, BlockSize)
	if err != nil {
		return khazana.Addr{}, fmt.Errorf("kfs: alloc root inode: %w", err)
	}
	if err := fs.writeInode(ctx, rootInode, &inode{Mode: ModeDir}); err != nil {
		return khazana.Addr{}, err
	}
	super, err := fs.allocRegion(ctx, BlockSize)
	if err != nil {
		return khazana.Addr{}, fmt.Errorf("kfs: alloc superblock: %w", err)
	}
	e := enc.NewEncoder(64)
	e.U32(superMagic)
	e.Addr(rootInode)
	if err := fs.writeRegion(ctx, super, 0, e.Bytes()); err != nil {
		return khazana.Addr{}, err
	}
	return super, nil
}

// Mount opens an existing file system by superblock address on any node.
func Mount(ctx context.Context, node *khazana.Node, super khazana.Addr, principal khazana.Principal) (*FS, error) {
	fs := &FS{node: node, principal: principal, super: super, attrs: normalizeAttrs(khazana.Attrs{})}
	buf, err := fs.readRegion(ctx, super, 0, 4+16)
	if err != nil {
		return nil, fmt.Errorf("kfs: read superblock: %w", err)
	}
	d := enc.NewDecoder(buf)
	if magic := d.U32(); magic != superMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadSuperblock, magic)
	}
	fs.root = d.Addr()
	return fs, nil
}

// normalizeAttrs applies kfs defaults (4 KB pages to match BlockSize).
func normalizeAttrs(a khazana.Attrs) khazana.Attrs {
	a.PageSize = BlockSize
	return a.Normalize()
}

// Root returns the root directory inode address.
func (fs *FS) Root() khazana.Addr { return fs.root }

// Super returns the superblock address.
func (fs *FS) Super() khazana.Addr { return fs.super }

// --- region helpers ---------------------------------------------------------

// allocRegion reserves and allocates a fresh region.
func (fs *FS) allocRegion(ctx context.Context, size uint64) (khazana.Addr, error) {
	return fs.allocRegionAttrs(ctx, size, fs.attrs)
}

func (fs *FS) allocRegionAttrs(ctx context.Context, size uint64, attrs khazana.Attrs) (khazana.Addr, error) {
	start, err := fs.node.Reserve(ctx, size, attrs, fs.principal)
	if err != nil {
		return khazana.Addr{}, err
	}
	if err := fs.node.Allocate(ctx, start, fs.principal); err != nil {
		return khazana.Addr{}, err
	}
	return start, nil
}

// readRegion reads [off, off+n) of a region under a read lock.
func (fs *FS) readRegion(ctx context.Context, start khazana.Addr, off, n uint64) ([]byte, error) {
	lk, err := fs.node.Lock(ctx, khazana.Range{Start: start.MustAdd(off), Size: n}, khazana.LockRead, fs.principal)
	if err != nil {
		return nil, err
	}
	defer lk.Unlock(ctx)
	return lk.Read(start.MustAdd(off), n)
}

// writeRegion writes data at off of a region under a write lock.
func (fs *FS) writeRegion(ctx context.Context, start khazana.Addr, off uint64, data []byte) error {
	lk, err := fs.node.Lock(ctx, khazana.Range{Start: start.MustAdd(off), Size: uint64(len(data))}, khazana.LockWrite, fs.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)
	return lk.Write(start.MustAdd(off), data)
}

// --- inode serialization -------------------------------------------------

func encodeInode(ino *inode) []byte {
	e := enc.NewEncoder(BlockSize)
	e.U32(inodeMagic)
	e.U32(ino.Mode)
	e.U64(ino.Size)
	for _, b := range ino.Direct {
		e.Addr(b)
	}
	e.Addr(ino.Indirect)
	return e.Bytes()
}

func decodeInode(buf []byte) (*inode, error) {
	d := enc.NewDecoder(buf)
	if magic := d.U32(); magic != inodeMagic {
		return nil, fmt.Errorf("kfs: bad inode magic %#x", magic)
	}
	ino := &inode{}
	ino.Mode = d.U32()
	ino.Size = d.U64()
	for i := range ino.Direct {
		ino.Direct[i] = d.Addr()
	}
	ino.Indirect = d.Addr()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return ino, nil
}

const inodeEncodedLen = 4 + 4 + 8 + DirectBlocks*16 + 16

func (fs *FS) readInode(ctx context.Context, addr khazana.Addr) (*inode, error) {
	buf, err := fs.readRegion(ctx, addr, 0, inodeEncodedLen)
	if err != nil {
		return nil, err
	}
	return decodeInode(buf)
}

func (fs *FS) writeInode(ctx context.Context, addr khazana.Addr, ino *inode) error {
	return fs.writeRegion(ctx, addr, 0, encodeInode(ino))
}

// --- path resolution ----------------------------------------------------------

// splitPath normalizes and splits a slash path.
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("kfs: invalid path component %q", p)
		}
		if len(p) > 255 {
			return nil, fmt.Errorf("kfs: name too long: %q", p)
		}
	}
	return parts, nil
}

// lookupPath resolves a path to its inode address, "a recursive descent of
// the filesystem directory tree from the root" (§4.1).
func (fs *FS) lookupPath(ctx context.Context, path string) (khazana.Addr, *inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return khazana.Addr{}, nil, err
	}
	cur := fs.root
	for _, name := range parts {
		_, entries, err := fs.readDirAtomic(ctx, cur)
		if err != nil {
			return khazana.Addr{}, nil, err
		}
		next, ok := findEntry(entries, name)
		if !ok {
			return khazana.Addr{}, nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		cur = next.Inode
	}
	ino, err := fs.readInode(ctx, cur)
	if err != nil {
		return khazana.Addr{}, nil, err
	}
	return cur, ino, nil
}

// lookupParent resolves the parent directory of path, returning its inode
// address and the final name component.
func (fs *FS) lookupParent(ctx context.Context, path string) (khazana.Addr, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return khazana.Addr{}, "", err
	}
	if len(parts) == 0 {
		return khazana.Addr{}, "", errors.New("kfs: root has no parent")
	}
	dirPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	addr, ino, err := fs.lookupPath(ctx, dirPath)
	if err != nil {
		return khazana.Addr{}, "", err
	}
	if !ino.isDir() {
		return khazana.Addr{}, "", ErrNotDir
	}
	return addr, parts[len(parts)-1], nil
}

func findEntry(entries []DirEntry, name string) (DirEntry, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return DirEntry{}, false
}

// --- directory contents -----------------------------------------------------

// Directory contents are the directory file's data: a count-prefixed list
// of entries.
func encodeDirEntries(entries []DirEntry) []byte {
	e := enc.NewEncoder(256)
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.String(ent.Name)
		e.Addr(ent.Inode)
		e.Bool(ent.IsDir)
	}
	return e.Bytes()
}

func decodeDirEntries(buf []byte) ([]DirEntry, error) {
	d := enc.NewDecoder(buf)
	count := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	entries := make([]DirEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		ent := DirEntry{Name: d.String()}
		ent.Inode = d.Addr()
		ent.IsDir = d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		entries = append(entries, ent)
	}
	return entries, nil
}

// readDirEntries reads a directory's entry list through its file data.
func (fs *FS) readDirEntries(ctx context.Context, addr khazana.Addr, ino *inode) ([]DirEntry, error) {
	if ino.Size == 0 {
		return nil, nil
	}
	f := &File{fs: fs, inodeAddr: addr}
	buf := make([]byte, ino.Size)
	if _, err := f.readAtWithInode(ctx, ino, buf, 0); err != nil {
		return nil, err
	}
	return decodeDirEntries(buf)
}

// readDirAtomic reads a directory's inode and entry list while holding a
// read lock on the inode region for the whole sequence. A directory
// mutation (addEntry, Remove) updates the entry block and then the inode
// under one held write lock on that region, so reading the two with
// separate lock acquisitions can observe the mutation half-applied: a new
// entry block against the old inode's Size truncates the decode mid-entry.
// Holding the inode-region read lock across both reads excludes the
// writer's whole critical section. Lock order (dir inode region, then
// entry block regions) matches the mutators', so the nesting cannot
// deadlock.
func (fs *FS) readDirAtomic(ctx context.Context, addr khazana.Addr) (*inode, []DirEntry, error) {
	lk, err := fs.node.Lock(ctx, khazana.Range{Start: addr, Size: BlockSize}, khazana.LockRead, fs.principal)
	if err != nil {
		return nil, nil, err
	}
	defer lk.Unlock(ctx)
	ino, err := fs.readInodeLocked(lk, addr)
	if err != nil {
		return nil, nil, err
	}
	if !ino.isDir() {
		return ino, nil, ErrNotDir
	}
	entries, err := fs.readDirEntries(ctx, addr, ino)
	if err != nil {
		return nil, nil, err
	}
	return ino, entries, nil
}

// writeDirEntries replaces a directory's entry list and updates ino.Size
// in memory. The caller holds the write lock on the directory inode region
// and persists the inode through that lock afterwards (writing it here
// would self-deadlock on the already-held lock).
func (fs *FS) writeDirEntries(ctx context.Context, addr khazana.Addr, ino *inode, entries []DirEntry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	buf := encodeDirEntries(entries)
	f := &File{fs: fs, inodeAddr: addr}
	if err := f.writeAtWithInode(ctx, ino, buf, 0); err != nil {
		return err
	}
	ino.Size = uint64(len(buf))
	return nil
}

// --- namespace operations --------------------------------------------------------

// Create creates a new file, with per-file region attributes selected at
// creation time (§4.1: "parameters specified at file creation time may be
// used to specify the number of replicas required, consistency level
// required, access modes permitted, and so forth").
func (fs *FS) Create(ctx context.Context, path string, attrs ...khazana.Attrs) (*File, error) {
	a := fs.attrs
	if len(attrs) > 0 {
		a = normalizeAttrs(attrs[0])
	}
	parent, name, err := fs.lookupParent(ctx, path)
	if err != nil {
		return nil, err
	}
	if err := fs.addEntry(ctx, parent, name, false, a); err != nil {
		return nil, err
	}
	return fs.Open(ctx, path)
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(ctx context.Context, path string) error {
	parent, name, err := fs.lookupParent(ctx, path)
	if err != nil {
		return err
	}
	return fs.addEntry(ctx, parent, name, true, fs.attrs)
}

// addEntry allocates an inode and links it into the parent directory.
func (fs *FS) addEntry(ctx context.Context, parent khazana.Addr, name string, dir bool, attrs khazana.Attrs) error {
	// Serialize directory mutations with a write lock on the parent
	// inode region.
	lk, err := fs.node.Lock(ctx, khazana.Range{Start: parent, Size: BlockSize}, khazana.LockWrite, fs.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)

	pino, err := fs.readInodeLocked(lk, parent)
	if err != nil {
		return err
	}
	entries, err := fs.readDirEntries(ctx, parent, pino)
	if err != nil {
		return err
	}
	if _, exists := findEntry(entries, name); exists {
		return fmt.Errorf("%w: %s", ErrExist, name)
	}
	inodeAddr, err := fs.allocRegionAttrs(ctx, BlockSize, attrs)
	if err != nil {
		return err
	}
	var mode uint32
	if dir {
		mode = ModeDir
	}
	if err := fs.writeInode(ctx, inodeAddr, &inode{Mode: mode}); err != nil {
		return err
	}
	entries = append(entries, DirEntry{Name: name, Inode: inodeAddr, IsDir: dir})
	if err := fs.writeDirEntries(ctx, parent, pino, entries); err != nil {
		return err
	}
	return fs.writeInodeLocked(lk, parent, pino)
}

// readInodeLocked reads an inode through an already-held lock.
func (fs *FS) readInodeLocked(lk *khazana.Lock, addr khazana.Addr) (*inode, error) {
	buf, err := lk.Read(addr, inodeEncodedLen)
	if err != nil {
		return nil, err
	}
	return decodeInode(buf)
}

func (fs *FS) writeInodeLocked(lk *khazana.Lock, addr khazana.Addr, ino *inode) error {
	return lk.Write(addr, encodeInode(ino))
}

// Open opens an existing file (§4.1: "opening a file is as simple as
// finding the inode address for the file by a recursive descent ... and
// caching that address").
func (fs *FS) Open(ctx context.Context, path string) (*File, error) {
	addr, ino, err := fs.lookupPath(ctx, path)
	if err != nil {
		return nil, err
	}
	if ino.isDir() {
		return nil, ErrIsDir
	}
	return &File{fs: fs, inodeAddr: addr, name: path}, nil
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(ctx context.Context, path string) ([]DirEntry, error) {
	addr, _, err := fs.lookupPath(ctx, path)
	if err != nil {
		return nil, err
	}
	_, entries, err := fs.readDirAtomic(ctx, addr)
	return entries, err
}

// Stat describes a path.
func (fs *FS) Stat(ctx context.Context, path string) (FileInfo, error) {
	addr, ino, err := fs.lookupPath(ctx, path)
	if err != nil {
		return FileInfo{}, err
	}
	parts, _ := splitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{Name: name, Size: ino.Size, IsDir: ino.isDir(), Inode: addr}, nil
}

// Remove unlinks a file or empty directory, unreserving its regions
// (§4.1: "to truncate a file, the system deallocates regions no longer
// needed").
func (fs *FS) Remove(ctx context.Context, path string) error {
	parent, name, err := fs.lookupParent(ctx, path)
	if err != nil {
		return err
	}
	lk, err := fs.node.Lock(ctx, khazana.Range{Start: parent, Size: BlockSize}, khazana.LockWrite, fs.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)

	pino, err := fs.readInodeLocked(lk, parent)
	if err != nil {
		return err
	}
	entries, err := fs.readDirEntries(ctx, parent, pino)
	if err != nil {
		return err
	}
	target, ok := findEntry(entries, name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	ino, err := fs.readInode(ctx, target.Inode)
	if err != nil {
		return err
	}
	if ino.isDir() && ino.Size > 0 {
		_, sub, err := fs.readDirAtomic(ctx, target.Inode)
		if err != nil {
			return err
		}
		if len(sub) > 0 {
			return ErrNotEmpty
		}
	}
	// Release the file's block regions and inode region.
	f := &File{fs: fs, inodeAddr: target.Inode}
	if err := f.truncateWithInode(ctx, ino, 0); err != nil {
		return err
	}
	if err := fs.node.Unreserve(ctx, target.Inode, fs.principal); err != nil {
		return err
	}
	out := entries[:0]
	for _, e := range entries {
		if e.Name != name {
			out = append(out, e)
		}
	}
	if err := fs.writeDirEntries(ctx, parent, pino, out); err != nil {
		return err
	}
	return fs.writeInodeLocked(lk, parent, pino)
}
