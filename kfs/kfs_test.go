package kfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"khazana"
)

func newFS(t *testing.T, nodes int) (*khazana.Cluster, *FS) {
	t.Helper()
	c, err := khazana.NewCluster(nodes, khazana.WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	super, err := Mkfs(ctx, c.Node(1), "fsadmin", khazana.Attrs{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(ctx, c.Node(1), super, "fsadmin")
	if err != nil {
		t.Fatal(err)
	}
	return c, fs
}

func TestCreateWriteReadFile(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()

	f, err := fs.Create(ctx, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, khazana filesystem")
	if _, err := f.WriteAt(ctx, msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	size, err := f.Size(ctx)
	if err != nil || size != uint64(len(msg)) {
		t.Fatalf("size = %d, %v", size, err)
	}
}

func TestDirectoryTree(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()

	if err := fs.Mkdir(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/a/b/f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/a/f2"); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "b" || !entries[0].IsDir || entries[1].Name != "f2" {
		t.Fatalf("entries = %+v", entries)
	}
	info, err := fs.Stat(ctx, "/a/b")
	if err != nil || !info.IsDir {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	info, err = fs.Stat(ctx, "/a/b/f1")
	if err != nil || info.IsDir {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	// Root listing.
	entries, err = fs.ReadDir(ctx, "/")
	if err != nil || len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("root = %+v, %v", entries, err)
	}
}

func TestPathErrors(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	if _, err := fs.Open(ctx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := fs.Create(ctx, "/no/such/dir/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("create in missing dir: %v", err)
	}
	if _, err := fs.Create(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/f"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := fs.Open(ctx, "/f/x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("descend through file: %v", err)
	}
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(ctx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir as file: %v", err)
	}
	if _, err := fs.Open(ctx, "/../etc"); err == nil {
		t.Fatal("dot-dot path accepted")
	}
}

func TestRemove(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, _ := fs.Create(ctx, "/doomed")
	_, _ = f.WriteAt(ctx, bytes.Repeat([]byte("x"), 3*BlockSize), 0)
	if err := fs.Remove(ctx, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(ctx, "/doomed"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open removed: %v", err)
	}
	// Directory removal: only when empty.
	_ = fs.Mkdir(ctx, "/dir")
	_, _ = fs.Create(ctx, "/dir/child")
	if err := fs.Remove(ctx, "/dir"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := fs.Remove(ctx, "/dir/child"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/dir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/never"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, err := fs.Create(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	// Write past the direct blocks into indirect territory.
	data := make([]byte, (DirectBlocks+3)*BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indirect block data corrupted")
	}
	// Sparse read of a middle slice.
	mid := make([]byte, 1000)
	if _, err := f.ReadAt(ctx, mid, uint64(DirectBlocks)*BlockSize+500); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, data[uint64(DirectBlocks)*BlockSize+500:uint64(DirectBlocks)*BlockSize+1500]) {
		t.Fatal("mid-file read corrupted")
	}
}

func TestFileSizeLimit(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, _ := fs.Create(ctx, "/limit")
	if _, err := f.WriteAt(ctx, []byte("x"), MaxFileSize); !errors.Is(err, ErrFileTooLarge) {
		t.Fatalf("write past limit: %v", err)
	}
	if err := f.Truncate(ctx, MaxFileSize+1); !errors.Is(err, ErrFileTooLarge) {
		t.Fatalf("truncate past limit: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, _ := fs.Create(ctx, "/t")
	data := bytes.Repeat([]byte("abcd"), 2*BlockSize/4)
	_, _ = f.WriteAt(ctx, data, 0)

	if err := f.Truncate(ctx, 100); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size(ctx)
	if size != 100 {
		t.Fatalf("size = %d", size)
	}
	got := make([]byte, 100)
	if _, err := f.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:100]) {
		t.Fatal("data lost on truncate")
	}
	// Reads past EOF hit io.EOF.
	if _, err := f.ReadAt(ctx, make([]byte, 10), 100); err != io.EOF {
		t.Fatalf("read past EOF: %v", err)
	}
	// Truncate to zero then regrow.
	if err := f.Truncate(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	buf, _ := f.ReadAll(ctx)
	if string(buf) != "fresh" {
		t.Fatalf("after regrow: %q", buf)
	}
}

func TestSparseHolesReadZero(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, _ := fs.Create(ctx, "/sparse")
	// Write only block 2.
	if _, err := f.WriteAt(ctx, []byte("tail"), 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	hole := make([]byte, 16)
	if _, err := f.ReadAt(ctx, hole, BlockSize); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestAppend(t *testing.T) {
	_, fs := newFS(t, 1)
	ctx := context.Background()
	f, _ := fs.Create(ctx, "/log")
	for i := 0; i < 5; i++ {
		if _, err := f.Append(ctx, []byte(fmt.Sprintf("line %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	all, err := f.ReadAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := "line 0\nline 1\nline 2\nline 3\nline 4\n"
	if string(all) != want {
		t.Fatalf("log = %q", all)
	}
}

func TestDistributedSharedMount(t *testing.T) {
	// The paper's headline property: the same filesystem runs
	// distributed without being aware of it. One node writes, another
	// mounts the same superblock and reads.
	c, fs1 := newFS(t, 3)
	ctx := context.Background()

	f, err := fs1.Create(ctx, "/shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, []byte("written on node 1"), 0); err != nil {
		t.Fatal(err)
	}

	fs3, err := Mount(ctx, c.Node(3), fs1.Super(), "fsadmin")
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs3.Open(ctx, "/shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "written on node 1" {
		t.Fatalf("node 3 read %q", got)
	}

	// And writes flow the other way.
	if _, err := g.WriteAt(ctx, []byte("updated on node 3"), 0); err != nil {
		t.Fatal(err)
	}
	back, err := f.ReadAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "updated on node 3" {
		t.Fatalf("node 1 reread %q", back)
	}
}

func TestConcurrentAppendsFromTwoMounts(t *testing.T) {
	c, fs1 := newFS(t, 2)
	ctx := context.Background()
	if _, err := fs1.Create(ctx, "/counter"); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(ctx, c.Node(2), fs1.Super(), "fsadmin")
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := fs1.Open(ctx, "/counter")
	f2, _ := fs2.Open(ctx, "/counter")

	done := make(chan error, 2)
	appendN := func(f *File, tag byte, n int) {
		for i := 0; i < n; i++ {
			if _, err := f.Append(ctx, []byte{tag}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}
	go appendN(f1, 'a', 20)
	go appendN(f2, 'b', 20)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	all, err := f1.ReadAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 40 {
		t.Fatalf("appends lost: %d bytes (CREW inode lock must serialize)", len(all))
	}
	var as, bs int
	for _, ch := range all {
		switch ch {
		case 'a':
			as++
		case 'b':
			bs++
		}
	}
	if as != 20 || bs != 20 {
		t.Fatalf("a=%d b=%d", as, bs)
	}
}

func TestMountBadSuperblock(t *testing.T) {
	c, fs := newFS(t, 1)
	ctx := context.Background()
	// The root inode address is a valid region but not a superblock.
	if _, err := Mount(ctx, c.Node(1), fs.Root(), "x"); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("mount non-superblock: %v", err)
	}
}

func TestPerFileAttrs(t *testing.T) {
	c, fs := newFS(t, 2)
	ctx := context.Background()
	attrs := khazana.Attrs{MinReplicas: 2, Level: khazana.Weak}
	f, err := fs.Create(ctx, "/replicated", attrs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Node(1).GetAttr(ctx, f.InodeAddr())
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs.MinReplicas != 2 {
		t.Fatalf("MinReplicas = %d", d.Attrs.MinReplicas)
	}
	if d.Attrs.Protocol != khazana.Eventual {
		t.Fatalf("protocol = %v", d.Attrs.Protocol)
	}
}
