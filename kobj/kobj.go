// Package kobj is a distributed object runtime built on Khazana,
// reproducing §4.2 of the paper: Khazana is the repository for object data
// and location information; the runtime layer decides the degree of
// consistency for each object, inserts locking and data access operations
// transparently around method invocations, and determines "when to create
// a local replica of an object rather than using RPC to invoke a remote
// instance of the object".
//
// Methods are "invoked by downloading the code to be executed along with
// the object instance, and invoking the code locally" — modeled here by a
// type registry every runtime shares (the Go functions stand in for
// downloadable code). Khazana provides location transparency (each object
// has a unique identifying Khazana address), keeps replicas consistent,
// and caches objects to speed access.
package kobj

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"khazana"
	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

const (
	objMagic = 0x4B4F424A // "KOBJ"
	// headerSize is the fixed prefix of an object region before state.
	headerPages = 1
)

// Errors returned by the runtime.
var (
	// ErrUnknownType reports an object whose type has no registration.
	ErrUnknownType = errors.New("kobj: unknown object type")
	// ErrUnknownMethod reports an invocation of an unregistered method.
	ErrUnknownMethod = errors.New("kobj: unknown method")
	// ErrNotObject reports a reference that is not an object region.
	ErrNotObject = errors.New("kobj: not an object")
	// ErrStateTooLarge reports state growth past the object's capacity.
	ErrStateTooLarge = errors.New("kobj: state exceeds object capacity")
)

// Method is object code: it receives the object's current state and the
// call arguments, returning the new state and a result. Read-only methods
// must return state unchanged.
type Method func(state []byte, args []byte) (newState []byte, result []byte, err error)

// MethodSpec describes one method of a type.
type MethodSpec struct {
	Fn Method
	// ReadOnly methods run under a read lock and may execute against a
	// cached replica.
	ReadOnly bool
}

// Type defines an object type: its name and method table.
type Type struct {
	Name    string
	Methods map[string]MethodSpec
}

// Ref is an object reference: the Khazana address of the object's region
// (§4.2: "Khazana provides location transparency for the object by
// associating with each object a unique identifying Khazana address").
type Ref = khazana.Addr

// Policy selects how invocations execute.
type Policy int

const (
	// PolicyAuto replicates objects that are invoked repeatedly and
	// uses RPC for objects touched rarely, using Khazana location
	// information (§4.2).
	PolicyAuto Policy = iota
	// PolicyLocal always loads a local replica.
	PolicyLocal
	// PolicyRemote always performs remote invocation at the object's
	// home.
	PolicyRemote
)

// Runtime is one node's object runtime, layered on a Khazana daemon.
type Runtime struct {
	node      *khazana.Node
	principal khazana.Principal

	mu    sync.Mutex
	types map[string]Type
	// hits counts invocations per object, driving PolicyAuto's
	// replicate-vs-RPC decision.
	hits map[Ref]int

	// ReplicateAfter is the invocation count at which PolicyAuto starts
	// using a local replica instead of RPC.
	ReplicateAfter int
	policy         Policy

	stats RuntimeStats
}

// RuntimeStats counts invocation routing decisions.
type RuntimeStats struct {
	LocalInvokes  int
	RemoteInvokes int
}

// NewRuntime attaches an object runtime to a node. The runtime registers
// itself as the daemon's application handler so peers can route remote
// invocations to it.
func NewRuntime(node *khazana.Node, principal khazana.Principal) *Runtime {
	r := &Runtime{
		node:           node,
		principal:      principal,
		types:          make(map[string]Type),
		hits:           make(map[Ref]int),
		ReplicateAfter: 2,
		policy:         PolicyAuto,
	}
	node.Core().SetAppHandler(r.handleApp)
	return r
}

// SetPolicy selects the invocation policy.
func (r *Runtime) SetPolicy(p Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
}

// Stats returns a snapshot of routing counters.
func (r *Runtime) Stats() RuntimeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// RegisterType installs a type's method table ("downloading the code").
// Every runtime that will execute this type's methods must register it.
func (r *Runtime) RegisterType(t Type) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.types[t.Name] = t
}

func (r *Runtime) typeOf(name string) (Type, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.types[name]
	return t, ok
}

// --- object layout -------------------------------------------------------

// header is page 0 of the object region.
type header struct {
	TypeName string
	StateLen uint64
	StateCap uint64
}

func encodeHeader(h *header) []byte {
	e := enc.NewEncoder(64)
	e.U32(objMagic)
	e.String(h.TypeName)
	e.U64(h.StateLen)
	e.U64(h.StateCap)
	return e.Bytes()
}

func decodeHeader(buf []byte) (*header, error) {
	d := enc.NewDecoder(buf)
	if magic := d.U32(); magic != objMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrNotObject, magic)
	}
	h := &header{}
	h.TypeName = d.String()
	h.StateLen = d.U64()
	h.StateCap = d.U64()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotObject, d.Err())
	}
	return h, nil
}

// New creates an object of the given registered type with initial state.
// stateCap bounds future state growth (0 = len(initial) rounded up to a
// page). Attrs select the object's consistency and replication (§4.2:
// individual programmers specify sharing and replication semantics per
// object).
func (r *Runtime) New(ctx context.Context, typeName string, initial []byte, stateCap uint64, attrs ...khazana.Attrs) (Ref, error) {
	if _, ok := r.typeOf(typeName); !ok {
		return Ref{}, fmt.Errorf("%w: %s", ErrUnknownType, typeName)
	}
	a := khazana.Attrs{}
	if len(attrs) > 0 {
		a = attrs[0]
	}
	a = a.Normalize()
	ps := uint64(a.PageSize)
	if stateCap == 0 {
		stateCap = (uint64(len(initial))/ps + 1) * ps
	}
	if uint64(len(initial)) > stateCap {
		return Ref{}, ErrStateTooLarge
	}
	size := uint64(headerPages)*ps + stateCap
	start, err := r.node.Reserve(ctx, size, a, r.principal)
	if err != nil {
		return Ref{}, err
	}
	if err := r.node.Allocate(ctx, start, r.principal); err != nil {
		return Ref{}, err
	}
	lk, err := r.node.Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockWrite, r.principal)
	if err != nil {
		return Ref{}, err
	}
	defer lk.Unlock(ctx)
	h := &header{TypeName: typeName, StateLen: uint64(len(initial)), StateCap: stateCap}
	if err := lk.Write(start, encodeHeader(h)); err != nil {
		return Ref{}, err
	}
	if len(initial) > 0 {
		if err := lk.Write(start.MustAdd(uint64(headerPages)*ps), initial); err != nil {
			return Ref{}, err
		}
	}
	return start, nil
}

// Invoke calls a method on the object, routing per the policy.
func (r *Runtime) Invoke(ctx context.Context, ref Ref, method string, args []byte) ([]byte, error) {
	desc, err := r.node.GetAttr(ctx, ref)
	if err != nil {
		return nil, err
	}
	remote := r.routeRemote(ctx, ref, desc)
	if remote != ktypes.NilNode {
		r.mu.Lock()
		r.stats.RemoteInvokes++
		r.mu.Unlock()
		return r.invokeRemote(ctx, remote, ref, method, args)
	}
	r.mu.Lock()
	r.stats.LocalInvokes++
	r.mu.Unlock()
	return r.invokeLocal(ctx, ref, desc, method, args)
}

// routeRemote decides whether (and where) to invoke remotely; NilNode
// means invoke locally.
func (r *Runtime) routeRemote(ctx context.Context, ref Ref, desc *khazana.Descriptor) ktypes.NodeID {
	home, err := desc.PrimaryHome()
	if err != nil || home == r.node.ID() {
		return ktypes.NilNode // we are the home: local is free
	}
	r.mu.Lock()
	policy := r.policy
	r.hits[ref]++
	hits := r.hits[ref]
	r.mu.Unlock()
	switch policy {
	case PolicyLocal:
		return ktypes.NilNode
	case PolicyRemote:
		return home
	default:
		// PolicyAuto: use RPC for cold objects; replicate once the
		// object proves hot. Khazana location information (is the
		// object already instantiated here?) short-circuits the
		// decision.
		if r.node.Core().Store().Contains(desc.PageBase(ref)) {
			return ktypes.NilNode
		}
		if hits <= r.ReplicateAfter {
			return home
		}
		return ktypes.NilNode
	}
}

// invokeLocal runs the method against the local replica (transparently
// locking, accessing, and unlocking the object's region, §2).
func (r *Runtime) invokeLocal(ctx context.Context, ref Ref, desc *khazana.Descriptor, method string, args []byte) ([]byte, error) {
	hdr, err := r.readHeader(ctx, ref, desc)
	if err != nil {
		return nil, err
	}
	t, ok := r.typeOf(hdr.TypeName)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, hdr.TypeName)
	}
	spec, ok := t.Methods[method]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, hdr.TypeName, method)
	}
	mode := khazana.LockWrite
	if spec.ReadOnly {
		mode = khazana.LockRead
	}
	size := desc.Range.Size
	lk, err := r.node.Lock(ctx, khazana.Range{Start: ref, Size: size}, mode, r.principal)
	if err != nil {
		return nil, err
	}
	defer lk.Unlock(ctx)

	ps := uint64(desc.Attrs.PageSize)
	// Re-read the header under the lock (StateLen may have changed).
	rawHdr, err := lk.Read(ref, ps)
	if err != nil {
		return nil, err
	}
	hdr, err = decodeHeader(rawHdr)
	if err != nil {
		return nil, err
	}
	stateBase := ref.MustAdd(uint64(headerPages) * ps)
	state, err := lk.Read(stateBase, hdr.StateLen)
	if err != nil {
		return nil, err
	}
	newState, result, err := spec.Fn(state, args)
	if err != nil {
		return nil, err
	}
	if !spec.ReadOnly {
		if uint64(len(newState)) > hdr.StateCap {
			return nil, ErrStateTooLarge
		}
		if err := lk.Write(stateBase, newState); err != nil {
			return nil, err
		}
		hdr.StateLen = uint64(len(newState))
		if err := lk.Write(ref, encodeHeader(hdr)); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// readHeader fetches the object header (read lock on the header page).
func (r *Runtime) readHeader(ctx context.Context, ref Ref, desc *khazana.Descriptor) (*header, error) {
	ps := uint64(desc.Attrs.PageSize)
	lk, err := r.node.Lock(ctx, khazana.Range{Start: ref, Size: ps}, khazana.LockRead, r.principal)
	if err != nil {
		return nil, err
	}
	defer lk.Unlock(ctx)
	raw, err := lk.Read(ref, ps)
	if err != nil {
		return nil, err
	}
	return decodeHeader(raw)
}

// invokeRemote performs the RPC path of §4.2.
func (r *Runtime) invokeRemote(ctx context.Context, node ktypes.NodeID, ref Ref, method string, args []byte) ([]byte, error) {
	resp, err := r.node.Core().Request(ctx, node, &wire.ObjInvoke{Ref: gaddr.Addr(ref), Method: method, Args: args})
	if err != nil {
		return nil, fmt.Errorf("kobj: remote invoke at %v: %w", node, err)
	}
	res, ok := resp.(*wire.ObjResult)
	if !ok {
		return nil, fmt.Errorf("kobj: unexpected reply %T", resp)
	}
	if res.Err != "" {
		return nil, errors.New(res.Err)
	}
	return res.Result, nil
}

// handleApp serves ObjInvoke requests arriving at this node's daemon.
func (r *Runtime) handleApp(ctx context.Context, _ ktypes.NodeID, m wire.Msg) (wire.Msg, bool, error) {
	inv, ok := m.(*wire.ObjInvoke)
	if !ok {
		return nil, false, nil
	}
	desc, err := r.node.GetAttr(ctx, inv.Ref)
	if err != nil {
		return &wire.ObjResult{Err: err.Error()}, true, nil
	}
	result, err := r.invokeLocal(ctx, inv.Ref, desc, inv.Method, inv.Args)
	if err != nil {
		return &wire.ObjResult{Err: err.Error()}, true, nil
	}
	r.mu.Lock()
	r.stats.LocalInvokes++
	r.mu.Unlock()
	return &wire.ObjResult{Result: result}, true, nil
}

// Destroy unreserves an object's region.
func (r *Runtime) Destroy(ctx context.Context, ref Ref) error {
	return r.node.Unreserve(ctx, ref, r.principal)
}

// TypeName returns an object's registered type name.
func (r *Runtime) TypeName(ctx context.Context, ref Ref) (string, error) {
	desc, err := r.node.GetAttr(ctx, ref)
	if err != nil {
		return "", err
	}
	hdr, err := r.readHeader(ctx, ref, desc)
	if err != nil {
		return "", err
	}
	return hdr.TypeName, nil
}
