package kobj

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"khazana"
)

// counterType is a simple shared counter object.
func counterType() Type {
	return Type{
		Name: "counter",
		Methods: map[string]MethodSpec{
			"get": {
				ReadOnly: true,
				Fn: func(state, _ []byte) ([]byte, []byte, error) {
					return state, append([]byte(nil), state...), nil
				},
			},
			"add": {
				Fn: func(state, args []byte) ([]byte, []byte, error) {
					v := binary.LittleEndian.Uint64(state)
					v += binary.LittleEndian.Uint64(args)
					out := make([]byte, 8)
					binary.LittleEndian.PutUint64(out, v)
					return out, append([]byte(nil), out...), nil
				},
			},
			"boom": {
				Fn: func(state, _ []byte) ([]byte, []byte, error) {
					return nil, nil, fmt.Errorf("method exploded")
				},
			},
		},
	}
}

func u64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

func newRuntimes(t *testing.T, nodes int) (*khazana.Cluster, []*Runtime) {
	t.Helper()
	c, err := khazana.NewCluster(nodes, khazana.WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	rts := make([]*Runtime, nodes)
	for i := 1; i <= nodes; i++ {
		rts[i-1] = NewRuntime(c.Node(i), "objadmin")
		rts[i-1].RegisterType(counterType())
	}
	return c, rts
}

func TestNewAndInvokeLocal(t *testing.T) {
	_, rts := newRuntimes(t, 1)
	ctx := context.Background()
	ref, err := rts[0].New(ctx, "counter", u64(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rts[0].Invoke(ctx, ref, "add", u64(5))
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(res) != 15 {
		t.Fatalf("add = %d", binary.LittleEndian.Uint64(res))
	}
	res, err = rts[0].Invoke(ctx, ref, "get", nil)
	if err != nil || binary.LittleEndian.Uint64(res) != 15 {
		t.Fatalf("get = %v, %v", res, err)
	}
}

func TestUnknownTypeAndMethod(t *testing.T) {
	_, rts := newRuntimes(t, 1)
	ctx := context.Background()
	if _, err := rts[0].New(ctx, "nosuch", nil, 0); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("new unknown type: %v", err)
	}
	ref, _ := rts[0].New(ctx, "counter", u64(0), 0)
	if _, err := rts[0].Invoke(ctx, ref, "fly", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	// Method errors propagate.
	if _, err := rts[0].Invoke(ctx, ref, "boom", nil); err == nil {
		t.Fatal("method error swallowed")
	}
}

func TestRemoteInvocation(t *testing.T) {
	_, rts := newRuntimes(t, 3)
	ctx := context.Background()
	// Object homed on node 1; node 3 invokes with PolicyRemote.
	ref, err := rts[0].New(ctx, "counter", u64(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	rts[2].SetPolicy(PolicyRemote)
	res, err := rts[2].Invoke(ctx, ref, "add", u64(1))
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(res) != 101 {
		t.Fatalf("remote add = %d", binary.LittleEndian.Uint64(res))
	}
	if rts[2].Stats().RemoteInvokes != 1 {
		t.Fatalf("stats = %+v", rts[2].Stats())
	}
	// The mutation is visible from the home.
	res, _ = rts[0].Invoke(ctx, ref, "get", nil)
	if binary.LittleEndian.Uint64(res) != 101 {
		t.Fatalf("home get = %d", binary.LittleEndian.Uint64(res))
	}
}

func TestPolicyAutoCrossover(t *testing.T) {
	_, rts := newRuntimes(t, 2)
	ctx := context.Background()
	ref, err := rts[0].New(ctx, "counter", u64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rts[1]
	// Cold invocations go remote; after ReplicateAfter the runtime
	// switches to a local replica (§4.2's decision procedure).
	for i := 0; i < 5; i++ {
		if _, err := r2.Invoke(ctx, ref, "get", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r2.Stats()
	if st.RemoteInvokes == 0 {
		t.Fatalf("expected early remote invokes: %+v", st)
	}
	if st.LocalInvokes == 0 {
		t.Fatalf("expected later local invokes after replication: %+v", st)
	}
}

func TestPolicyLocalReplicates(t *testing.T) {
	_, rts := newRuntimes(t, 2)
	ctx := context.Background()
	ref, _ := rts[0].New(ctx, "counter", u64(7), 0)
	rts[1].SetPolicy(PolicyLocal)
	res, err := rts[1].Invoke(ctx, ref, "get", nil)
	if err != nil || binary.LittleEndian.Uint64(res) != 7 {
		t.Fatalf("local get = %v, %v", res, err)
	}
	if rts[1].Stats().RemoteInvokes != 0 {
		t.Fatalf("stats = %+v", rts[1].Stats())
	}
}

func TestConcurrentAddsFromAllNodes(t *testing.T) {
	// Strictly consistent object: concurrent increments from every node
	// must all survive (the CREW region lock serializes them).
	_, rts := newRuntimes(t, 3)
	ctx := context.Background()
	ref, err := rts[0].New(ctx, "counter", u64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rts {
		r.SetPolicy(PolicyLocal)
	}
	const perNode = 10
	var wg sync.WaitGroup
	errs := make([]error, len(rts))
	for i, r := range rts {
		wg.Add(1)
		go func(i int, r *Runtime) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				if _, err := r.Invoke(ctx, ref, "add", u64(1)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := rts[0].Invoke(ctx, ref, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(res); got != uint64(len(rts)*perNode) {
		t.Fatalf("counter = %d, want %d", got, len(rts)*perNode)
	}
}

func TestStateGrowthAndCapacity(t *testing.T) {
	_, rts := newRuntimes(t, 1)
	ctx := context.Background()
	appendType := Type{
		Name: "blob",
		Methods: map[string]MethodSpec{
			"append": {Fn: func(state, args []byte) ([]byte, []byte, error) {
				out := append(append([]byte(nil), state...), args...)
				return out, nil, nil
			}},
			"len": {ReadOnly: true, Fn: func(state, _ []byte) ([]byte, []byte, error) {
				return state, u64(uint64(len(state))), nil
			}},
		},
	}
	rts[0].RegisterType(appendType)
	ref, err := rts[0].New(ctx, "blob", nil, 8192)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 3000)
	if _, err := rts[0].Invoke(ctx, ref, "append", chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := rts[0].Invoke(ctx, ref, "append", chunk); err != nil {
		t.Fatal(err)
	}
	res, _ := rts[0].Invoke(ctx, ref, "len", nil)
	if binary.LittleEndian.Uint64(res) != 6000 {
		t.Fatalf("len = %d", binary.LittleEndian.Uint64(res))
	}
	// A third append exceeds the 8 KiB capacity.
	if _, err := rts[0].Invoke(ctx, ref, "append", chunk); !errors.Is(err, ErrStateTooLarge) {
		t.Fatalf("over-capacity append: %v", err)
	}
}

func TestTypeNameAndDestroy(t *testing.T) {
	_, rts := newRuntimes(t, 1)
	ctx := context.Background()
	ref, _ := rts[0].New(ctx, "counter", u64(1), 0)
	name, err := rts[0].TypeName(ctx, ref)
	if err != nil || name != "counter" {
		t.Fatalf("type = %q, %v", name, err)
	}
	if err := rts[0].Destroy(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if _, err := rts[0].Invoke(ctx, ref, "get", nil); err == nil {
		t.Fatal("invoke after destroy should fail")
	}
}

func TestWeakObjectsConverge(t *testing.T) {
	// Per-object consistency choice (§4.2): an eventually consistent
	// object trades strictness for latency.
	_, rts := newRuntimes(t, 2)
	ctx := context.Background()
	ref, err := rts[0].New(ctx, "counter", u64(0), 0, khazana.Attrs{Level: khazana.Weak})
	if err != nil {
		t.Fatal(err)
	}
	rts[1].SetPolicy(PolicyLocal)
	if _, err := rts[1].Invoke(ctx, ref, "add", u64(9)); err != nil {
		t.Fatal(err)
	}
	res, err := rts[0].Invoke(ctx, ref, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(res) != 9 {
		t.Fatalf("home value = %d", binary.LittleEndian.Uint64(res))
	}
}
