package khazana

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/transport"
)

// Cluster is an in-process Khazana deployment: a set of daemons connected
// by a simulated network. It is the unit the experiment harness, examples,
// and tests build on — node 1 is the cluster manager, map home, and
// genesis node, matching the single-cluster design of the paper's
// prototype (§3.1, §5).
type Cluster struct {
	// Network is the simulated network; use it to inject latency,
	// partitions, and crashes.
	Network *transport.Network
	nodes   []*Node
	dir     string
	ownDir  bool
	cfg     clusterConfig
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	dir         string
	memPages    int
	diskPages   int
	latency     time.Duration
	heartbeat   time.Duration
	retry       time.Duration
	replica     time.Duration
	migration   time.Duration
	perPage     bool
	noReadAhead bool
	perPageRepl bool
	noTelemetry bool
	noRing      bool
	tracer      func(NodeID, string)
}

// WithStoreDir roots every node's disk tier under dir (default: a temp
// directory removed on Close).
func WithStoreDir(dir string) ClusterOption {
	return func(c *clusterConfig) { c.dir = dir }
}

// WithMemPages bounds each node's RAM page cache.
func WithMemPages(n int) ClusterOption {
	return func(c *clusterConfig) { c.memPages = n }
}

// WithDiskPages bounds each node's disk page cache.
func WithDiskPages(n int) ClusterOption {
	return func(c *clusterConfig) { c.diskPages = n }
}

// WithLatency sets the simulated one-way network latency between nodes.
func WithLatency(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.latency = d }
}

// WithBackground enables the heartbeat, retry, and replica-maintenance
// loops at the given intervals.
func WithBackground(heartbeat, retry, replica time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		c.heartbeat, c.retry, c.replica = heartbeat, retry, replica
	}
}

// WithAutoMigration enables the load-aware migration policy at the given
// interval on every node.
func WithAutoMigration(interval time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.migration = interval }
}

// WithPerPageTransfers disables the batched multi-page lock/fetch and
// release pipeline on every node, issuing one RPC per page instead.
// Benchmarks use it to compare the two transfer paths.
func WithPerPageTransfers() ClusterOption {
	return func(c *clusterConfig) { c.perPage = true }
}

// WithNoReadAhead disables adaptive read-ahead grant pipelining on every
// node: homes stop piggybacking speculative grants onto sequential
// readers' lock batches. The prefetch benchmarks (E16) use it as the
// baseline.
func WithNoReadAhead() ClusterOption {
	return func(c *clusterConfig) { c.noReadAhead = true }
}

// WithPerPageReplication disables the batched replication write-through
// on every node, pushing one RPC per page per replica instead of one
// batch per replica. The write-through benchmarks (E16) use it as the
// baseline.
func WithPerPageReplication() ClusterOption {
	return func(c *clusterConfig) { c.perPageRepl = true }
}

// WithNoRing disables the consistent-hashing descriptor partition on
// every node, restoring the paper's cluster-hint / tree-walk lookup path
// for cold misses. The lookup benchmarks (E20) and the paper-faithful
// trace reproductions (E2, E3) use it as the baseline.
func WithNoRing() ClusterOption {
	return func(c *clusterConfig) { c.noRing = true }
}

// WithNoTelemetry disables the metrics registry and trace recorder on
// every node. The telemetry-overhead benchmarks use it as the baseline.
func WithNoTelemetry() ClusterOption {
	return func(c *clusterConfig) { c.noTelemetry = true }
}

// WithTracer installs a Figure-2 step tracer on every node.
func WithTracer(fn func(node NodeID, step string)) ClusterOption {
	return func(c *clusterConfig) { c.tracer = fn }
}

// NewCluster starts count daemons (IDs 1..count) on a fresh simulated
// network.
func NewCluster(count int, opts ...ClusterOption) (*Cluster, error) {
	if count < 1 {
		return nil, fmt.Errorf("khazana: cluster needs at least one node")
	}
	var cfg clusterConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ownDir := false
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "khazana-cluster-")
		if err != nil {
			return nil, err
		}
		cfg.dir = dir
		ownDir = true
	}
	net := transport.NewNetwork()
	if cfg.latency > 0 {
		net.SetBaseLatency(cfg.latency)
	}
	c := &Cluster{Network: net, dir: cfg.dir, ownDir: ownDir, cfg: cfg}
	ctx := context.Background()
	for i := 1; i <= count; i++ {
		id := ktypes.NodeID(i)
		tr, err := net.Attach(id)
		if err != nil {
			c.Close()
			return nil, err
		}
		var tracer func(string)
		if cfg.tracer != nil {
			nid := id
			tracer = func(step string) { cfg.tracer(nid, step) }
		}
		node, err := StartNode(ctx, NodeConfig{
			ID:                 id,
			Transport:          tr,
			StoreDir:           filepath.Join(cfg.dir, fmt.Sprintf("node-%d", i)),
			MemPages:           cfg.memPages,
			DiskPages:          cfg.diskPages,
			ClusterManager:     1,
			MapHome:            1,
			Genesis:            i == 1,
			HeartbeatInterval:  cfg.heartbeat,
			RetryInterval:      cfg.retry,
			ReplicaInterval:    cfg.replica,
			MigrationInterval:  cfg.migration,
			PerPageTransfers:   cfg.perPage,
			NoReadAhead:        cfg.noReadAhead,
			PerPageReplication: cfg.perPageRepl,
			NoTelemetry:        cfg.noTelemetry,
			NoRing:             cfg.noRing,
			Tracer:             tracer,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("khazana: start node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// AddNode starts one more daemon and attaches it to the cluster,
// exercising dynamic membership (§3.1: machines can dynamically enter and
// leave Khazana). The new daemon inherits the cluster's options, so a
// WithNoRing (or cache-bounded, telemetry-free, ...) cluster stays
// homogeneous as it grows.
func (c *Cluster) AddNode() (*Node, error) {
	id := ktypes.NodeID(len(c.nodes) + 1)
	tr, err := c.Network.Attach(id)
	if err != nil {
		return nil, err
	}
	var tracer func(string)
	if c.cfg.tracer != nil {
		nid := id
		tracer = func(step string) { c.cfg.tracer(nid, step) }
	}
	node, err := StartNode(context.Background(), NodeConfig{
		ID:                 id,
		Transport:          tr,
		StoreDir:           filepath.Join(c.dir, fmt.Sprintf("node-%d", id)),
		MemPages:           c.cfg.memPages,
		DiskPages:          c.cfg.diskPages,
		ClusterManager:     1,
		MapHome:            1,
		HeartbeatInterval:  c.cfg.heartbeat,
		RetryInterval:      c.cfg.retry,
		ReplicaInterval:    c.cfg.replica,
		MigrationInterval:  c.cfg.migration,
		PerPageTransfers:   c.cfg.perPage,
		NoReadAhead:        c.cfg.noReadAhead,
		PerPageReplication: c.cfg.perPageRepl,
		NoTelemetry:        c.cfg.noTelemetry,
		NoRing:             c.cfg.noRing,
		Tracer:             tracer,
	})
	if err != nil {
		return nil, err
	}
	c.nodes = append(c.nodes, node)
	return node, nil
}

// Node returns daemon i (1-based, matching node IDs).
func (c *Cluster) Node(i int) *Node { return c.nodes[i-1] }

// Len returns the number of daemons.
func (c *Cluster) Len() int { return len(c.nodes) }

// Nodes returns all daemons.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// Crash simulates a process failure of node i.
func (c *Cluster) Crash(i int) { c.Network.Crash(ktypes.NodeID(i)) }

// Restart clears node i's crashed state.
func (c *Cluster) Restart(i int) { c.Network.Restart(ktypes.NodeID(i)) }

// Partition cuts the link between nodes a and b.
func (c *Cluster) Partition(a, b int) {
	c.Network.Partition(ktypes.NodeID(a), ktypes.NodeID(b))
}

// Heal restores the link between nodes a and b.
func (c *Cluster) Heal(a, b int) {
	c.Network.Heal(ktypes.NodeID(a), ktypes.NodeID(b))
}

// Close stops every daemon and removes owned state.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
	if c.ownDir {
		_ = os.RemoveAll(c.dir)
	}
}
