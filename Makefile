GO ?= go
BIN := bin/khazlint

.PHONY: all build test race vet lint fmt-check bench-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the standard suite plus khazlint as a vettool, so findings
# carry package context and benefit from the go command's vet cache.
vet: $(BIN)
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

# lint runs khazlint standalone (faster feedback than vettool mode).
lint:
	$(GO) run ./cmd/khazlint ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench-smoke runs every benchmark for a single iteration so bit-rotted
# benchmark code fails CI instead of lingering until someone profiles.
# -benchmem keeps allocation figures visible in CI logs; the hard
# allocation gate for cached zero-copy reads is TestCachedReadAllocGate.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/khazlint

.PHONY: FORCE
FORCE:

clean:
	rm -rf bin
