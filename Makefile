GO ?= go
BIN := bin/khazlint

.PHONY: all build test race vet lint lint-selftest fmt-check bench-smoke telemetry-smoke clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the standard suite plus khazlint as a vettool, so findings
# carry package context and benefit from the go command's vet cache.
vet: $(BIN)
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN) ./...

# lint runs khazlint standalone (faster feedback than vettool mode),
# suppressing findings recorded in the committed baseline so only new
# findings fail the build.
lint:
	$(GO) run ./cmd/khazlint -baseline lint-baseline.json ./...

# lint-selftest exercises the lint suite itself: its unit tests plus a
# full standalone and vettool run over the repo, the whole leg under a
# 30-second budget so the whole-program passes (call graph + summaries)
# cannot quietly become too slow to keep in CI. The last block proves the
# stale-baseline contract end-to-end on a small package: a baseline entry
# with no matching finding fails the run, -prune-baseline drops it, and
# the pruned baseline passes again.
lint-selftest: $(BIN)
	timeout 30 sh -c '\
		$(GO) test -count=1 ./internal/lint/... ./cmd/khazlint/ && \
		$(GO) run ./cmd/khazlint -baseline lint-baseline.json ./... && \
		$(GO) vet -vettool=$(CURDIR)/$(BIN) ./... && \
		tmp=$$(mktemp) && \
		printf "%s" "[{\"analyzer\":\"erricheck\",\"file\":\"gone.go\",\"line\":1,\"col\":1,\"message\":\"synthetic stale entry\"}]" > $$tmp && \
		! $(CURDIR)/$(BIN) -baseline $$tmp ./internal/gaddr/ && \
		$(CURDIR)/$(BIN) -prune-baseline $$tmp ./internal/gaddr/ && \
		$(CURDIR)/$(BIN) -baseline $$tmp ./internal/gaddr/ && \
		rm -f $$tmp'

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench-smoke runs every benchmark for a single iteration so bit-rotted
# benchmark code fails CI instead of lingering until someone profiles.
# -benchmem keeps allocation figures visible in CI logs; the hard
# allocation gate for cached zero-copy reads is TestCachedReadAllocGate.
# The armed E15 gate then fails the leg if telemetry slows the cached
# read path by more than 5% against the telemetry.Nop() baseline, and
# the armed E16 gate fails it if the sequential sweep stops saving >=2x
# grant RPCs or a multi-page release sends more than one update RPC per
# replica. The armed E17 gate fails it if snapshot scans stop scaling
# with reader count (>=1.4x from 1 to 4 readers) or the hot writer loses
# more than 60% of its uncontended rate under 4 snapshot readers. The
# snapshot path's own allocation gate is TestSnapshotViewAllocGate
# (budget: 0 allocs per cached view). The armed E18 gate fails the leg
# if, at full fan-in (thousands of concurrent TCP clients at one
# daemon), mux+sharded aggregate throughput drops below 2x the
# serial+coarse baseline or the mux leg's daemon-side connection count
# stops being decoupled from the client count. The armed E19 gate fails
# it if killing a home under a live lock/write/unlock workload takes the
# client more than 2s to resume (lease timeout + one election, with
# margin), loses an acked release, or surfaces any client-visible error.
# The armed E20 gate fails it if cold descriptor lookups through the
# consistent-hash ring stop being flat across 16->256-node clusters
# (max/min > 3x), drop below 10x over the tree-walk fallback at 256
# nodes, fall back to the walk in steady state, or cannot resolve a
# region after every bucket owner crashes.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...
	KHAZANA_E15_GATE=1 $(GO) test -run TestE15TelemetryOverheadGate -count=1 -v ./internal/experiments/
	KHAZANA_E16_GATE=1 $(GO) test -run TestE16WriteThroughGate -count=1 -v ./internal/experiments/
	KHAZANA_E17_GATE=1 $(GO) test -run TestE17SnapshotScanGate -count=1 -v ./internal/experiments/
	KHAZANA_E18_GATE=1 $(GO) test -run TestE18FanInGate -count=1 -v ./internal/experiments/
	KHAZANA_E19_GATE=1 $(GO) test -run TestE19FailoverGate -count=1 -v ./internal/experiments/
	KHAZANA_E20_GATE=1 $(GO) test -run TestE20RingLookupGate -count=1 -v ./internal/experiments/

# telemetry-smoke boots a real khazanad with the HTTP debug listener and
# curls the export surface: /metrics must serve Prometheus text and JSON,
# /traces must serve the span ring.
telemetry-smoke:
	@set -e; \
	dir=$$(mktemp -d); \
	$(GO) build -o $$dir/khazanad ./cmd/khazanad; \
	$$dir/khazanad -id 1 -listen 127.0.0.1:17450 -store $$dir/store \
		-genesis -debug-addr 127.0.0.1:17460 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf $$dir" EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:17460/metrics >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:17460/metrics | grep -q '^# TYPE khazana_'; \
	curl -fsS 'http://127.0.0.1:17460/metrics?format=json' | grep -q '"counters"'; \
	curl -fsS http://127.0.0.1:17460/traces >/dev/null; \
	echo "telemetry-smoke: OK"

$(BIN): FORCE
	$(GO) build -o $(BIN) ./cmd/khazlint

.PHONY: FORCE
FORCE:

clean:
	rm -rf bin
