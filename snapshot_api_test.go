package khazana

import (
	"bytes"
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"khazana/internal/telemetry"
)

// counterValue digs a counter out of a node's metrics snapshot.
func counterValue(n *Node, name string) uint64 {
	for _, c := range n.Core().MetricsSnapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func TestSnapshotPinnedCutSurvivesWrites(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	const ps = uint64(4096)
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, 2*ps, Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	pageB := start.MustAdd(ps)

	write := func(n *Node, a Addr, s string) {
		t.Helper()
		lk, err := n.Lock(ctx, Range{Start: a, Size: ps}, LockWrite, "alice")
		if err != nil {
			t.Fatal(err)
		}
		if err := lk.Write(a, []byte(s)); err != nil {
			t.Fatal(err)
		}
		if err := lk.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	write(c.Node(2), start, "A-v1")
	write(c.Node(2), pageB, "B-v1")

	// The first read pins the cut; later writes must not leak in.
	snap := c.Node(2).Snapshot("alice")
	defer snap.Close()
	got, err := snap.View(ctx, start, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "A-v1" {
		t.Fatalf("snapshot page A = %q", got)
	}

	write(c.Node(3), start, "A-v2")
	write(c.Node(3), pageB, "B-v2")

	// Re-reading the pinned page and reading the not-yet-touched page both
	// observe the pinned cut, not the newer commits.
	if got, _ := snap.View(ctx, start, 4); string(got) != "A-v1" {
		t.Errorf("pinned page A after writes = %q, want A-v1", got)
	}
	if got, _ := snap.View(ctx, pageB, 4); string(got) != "B-v1" {
		t.Errorf("page B at pinned cut = %q, want B-v1", got)
	}
	if data, _ := snap.Read(ctx, start, 4); string(data) != "A-v1" {
		t.Errorf("copying read at pinned cut = %q, want A-v1", data)
	}

	// A fresh snapshot observes the newest committed versions.
	fresh := c.Node(3).Snapshot("alice")
	defer fresh.Close()
	if got, _ := fresh.View(ctx, start, 4); string(got) != "A-v2" {
		t.Errorf("fresh snapshot page A = %q, want A-v2", got)
	}
	if got, _ := fresh.View(ctx, pageB, 4); string(got) != "B-v2" {
		t.Errorf("fresh snapshot page B = %q, want B-v2", got)
	}
}

func TestSnapshotDoesNotBlockOnWriter(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	const ps = uint64(4096)
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, ps, Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: ps}, LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Node 2 parks on the write lock with uncommitted bytes in flight.
	lk, err = c.Node(2).Lock(ctx, Range{Start: start, Size: ps}, LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}

	// A CREW read would wait for the writer; the snapshot answers now.
	done := make(chan string, 1)
	go func() {
		snap := c.Node(3).Snapshot("alice")
		defer snap.Close()
		data, err := snap.Read(ctx, start, 9)
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		done <- string(data)
	}()
	select {
	case got := <-done:
		if got != "committed" {
			t.Errorf("snapshot under writer = %q, want committed", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot read blocked on an in-flight writer")
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotConcurrentReadersAndWriter races snapshot readers pinning
// old versions against a writer publishing new ones. Every observed page
// must be internally consistent (the stamp at the page head matches the
// stamp at the tail — COW guarantees no torn reads) and two reads of one
// snapshot must agree.
func TestSnapshotConcurrentReadersAndWriter(t *testing.T) {
	c := newTestCluster(t, 3)
	ctx := context.Background()
	const ps = uint64(4096)
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, ps, Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}

	stamp := func(buf []byte, v uint64) {
		binary.LittleEndian.PutUint64(buf[:8], v)
		binary.LittleEndian.PutUint64(buf[ps-8:], v)
	}
	page := make([]byte, ps)
	stamp(page, 0)
	lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: ps}, LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, page); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: publish versions 1, 2, 3, ...
		defer wg.Done()
		buf := make([]byte, ps)
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			stamp(buf, v)
			lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: ps}, LockWrite, "alice")
			if err != nil {
				t.Error(err)
				return
			}
			if err := lk.Write(start, buf); err != nil {
				t.Error(err)
				return
			}
			if err := lk.Unlock(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			node := c.Node(1 + reader%3)
			for i := 0; i < 50; i++ {
				snap := node.Snapshot("alice")
				first, err := snap.View(ctx, start, ps)
				if err != nil {
					t.Error(err)
					snap.Close()
					return
				}
				head := binary.LittleEndian.Uint64(first[:8])
				tail := binary.LittleEndian.Uint64(first[ps-8:])
				if head != tail {
					t.Errorf("torn snapshot page: head %d tail %d", head, tail)
				}
				again, err := snap.View(ctx, start, ps)
				if err != nil {
					t.Error(err)
					snap.Close()
					return
				}
				if !bytes.Equal(first, again) {
					t.Error("one snapshot served two different versions")
				}
				snap.Close()
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotOldVersionsReclaimUnderPressure squeezes the RAM tier so the
// store's reclaimer hook gives back retained old versions before any
// demand page is victimized — while a pinned snapshot keeps its frame and
// demand reads stay correct.
func TestSnapshotOldVersionsReclaimUnderPressure(t *testing.T) {
	c := newTestCluster(t, 2, WithMemPages(4))
	ctx := context.Background()
	const ps = uint64(4096)
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, 8*ps, Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	write := func(a Addr, s string) {
		t.Helper()
		lk, err := c.Node(2).Lock(ctx, Range{Start: a, Size: ps}, LockWrite, "alice")
		if err != nil {
			t.Fatal(err)
		}
		if err := lk.Write(a, []byte(s)); err != nil {
			t.Fatal(err)
		}
		if err := lk.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}

	write(start, "hot-v1")
	snap := c.Node(1).Snapshot("alice")
	defer snap.Close()
	if got, _ := snap.View(ctx, start, 6); string(got) != "hot-v1" {
		t.Fatalf("pinned snapshot = %q", got)
	}

	// Publish a stack of newer versions, then sweep demand reads across
	// the region to force eviction pressure at the home.
	for i := 0; i < 8; i++ {
		write(start, "hot-v2")
	}
	for i := uint64(0); i < 8; i++ {
		a := start.MustAdd(i * ps)
		write(a, "cold")
		lk, err := c.Node(1).Lock(ctx, Range{Start: a, Size: ps}, LockRead, "alice")
		if err != nil {
			t.Fatal(err)
		}
		got, err := lk.Read(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "cold" {
			t.Errorf("demand read of page %d = %q, want cold", i, got)
		}
		if err := lk.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}

	if freed := counterValue(c.Node(1), telemetry.MetricSnapshotReclaimed); freed == 0 {
		t.Error("no old-version frames were reclaimed under pressure")
	}
	// The pinned frame is untouched by reclamation.
	if got, _ := snap.View(ctx, start, 6); string(got) != "hot-v1" {
		t.Errorf("pinned snapshot after reclaim = %q, want hot-v1", got)
	}
}

func TestSnapshotMetricsAndErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	const ps = uint64(4096)
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, ps, Attrs{ACL: PrivateACL("alice")}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	lk, err := n1.Lock(ctx, Range{Start: start, Size: ps}, LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// ACL enforcement: a foreign principal cannot snapshot the region.
	deny := c.Node(2).Snapshot("mallory")
	if _, err := deny.Read(ctx, start, 6); err == nil {
		t.Error("snapshot read by unauthorized principal succeeded")
	}
	deny.Close()

	before := counterValue(n1, telemetry.MetricSnapshotReads)
	snap := n1.Snapshot("alice")
	for i := 0; i < 3; i++ {
		if _, err := snap.View(ctx, start, 6); err != nil {
			t.Fatal(err)
		}
	}
	snap.Close()
	if got := counterValue(n1, telemetry.MetricSnapshotReads); got != before+3 {
		t.Errorf("snapshot_reads = %d, want %d", got, before+3)
	}

	// Closed contexts refuse further reads.
	if _, err := snap.View(ctx, start, 6); err == nil {
		t.Error("view on a closed snapshot succeeded")
	}
	if _, err := snap.Read(ctx, start, 6); err == nil {
		t.Error("read on a closed snapshot succeeded")
	}
}
