package khazana

import (
	"context"
	"errors"
	"fmt"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// Client is a remote Khazana client: it drives a daemon over the wire
// protocol instead of linking the library in-process. This is how
// application processes interact with a standalone khazanad (§2:
// "typically an application process (client) interacts with Khazana
// through library routines").
type Client struct {
	tr        transport.Transport
	target    NodeID
	principal Principal
	own       bool
}

// Dial connects to a daemon over TCP. selfID must be unique among all
// nodes and clients of the deployment (use high IDs for clients).
func Dial(selfID NodeID, daemonID NodeID, daemonAddr string, principal Principal) (*Client, error) {
	tcp, err := transport.NewTCP(selfID, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tcp.AddPeer(daemonID, daemonAddr)
	return &Client{tr: tcp, target: daemonID, principal: principal, own: true}, nil
}

// NewClient wraps an existing transport (e.g. an endpoint of an in-process
// cluster's network) as a client of the given daemon.
func NewClient(tr transport.Transport, daemonID NodeID, principal Principal) *Client {
	return &Client{tr: tr, target: daemonID, principal: principal}
}

// Close releases the client's transport when it owns it.
func (c *Client) Close() error {
	if c.own {
		return c.tr.Close()
	}
	return nil
}

func (c *Client) call(ctx context.Context, m wire.Msg) (wire.Msg, error) {
	return c.tr.Request(ctx, c.target, m)
}

func ackToErr(m wire.Msg, err error) error {
	if err != nil {
		return err
	}
	ack, ok := m.(*wire.Ack)
	if !ok {
		return fmt.Errorf("khazana: unexpected reply %T", m)
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}

// Reserve reserves a region.
func (c *Client) Reserve(ctx context.Context, size uint64, attrs Attrs) (Addr, error) {
	resp, err := c.call(ctx, &wire.CReserve{Size: size, Attrs: attrs, Principal: c.principal})
	if err != nil {
		return Addr{}, err
	}
	r, ok := resp.(*wire.CReserveResp)
	if !ok {
		return Addr{}, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	if r.Err != "" {
		return Addr{}, errors.New(r.Err)
	}
	return r.Start, nil
}

// Unreserve releases a region.
func (c *Client) Unreserve(ctx context.Context, start Addr) error {
	return ackToErr(c.call(ctx, &wire.CUnreserve{Start: start, Principal: c.principal}))
}

// Allocate attaches storage to a region.
func (c *Client) Allocate(ctx context.Context, start Addr) error {
	return ackToErr(c.call(ctx, &wire.CAllocate{Start: start, Principal: c.principal}))
}

// Free releases a region's storage.
func (c *Client) Free(ctx context.Context, start Addr) error {
	return ackToErr(c.call(ctx, &wire.CFree{Start: start, Principal: c.principal}))
}

// GetAttr fetches the descriptor of the region containing addr.
func (c *Client) GetAttr(ctx context.Context, addr Addr) (*Descriptor, error) {
	resp, err := c.call(ctx, &wire.CGetAttr{Addr: addr})
	if err != nil {
		return nil, err
	}
	info, ok := resp.(*wire.RegionInfo)
	if !ok {
		return nil, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	if !info.Found {
		if info.Err != "" {
			return nil, errors.New(info.Err)
		}
		return nil, errors.New("khazana: region not found")
	}
	return info.Desc, nil
}

// SetAttr updates a region's attributes.
func (c *Client) SetAttr(ctx context.Context, start Addr, attrs Attrs) error {
	return ackToErr(c.call(ctx, &wire.CSetAttr{Start: start, Attrs: attrs, Principal: c.principal}))
}

// Lock locks part of a region, returning a remote lock context.
func (c *Client) Lock(ctx context.Context, rng Range, mode LockMode) (*RemoteLock, error) {
	resp, err := c.call(ctx, &wire.CLock{Range: rng, Mode: mode, Principal: c.principal})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(*wire.CLockResp)
	if !ok {
		return nil, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	if r.Err != "" {
		return nil, errors.New(r.Err)
	}
	return &RemoteLock{client: c, id: r.LockID, rng: rng, mode: mode}, nil
}

// RemoteLock is a lock context held on the daemon on the client's behalf.
type RemoteLock struct {
	client *Client
	id     uint64
	rng    Range
	mode   LockMode
}

// ID returns the daemon-side lock context identifier.
func (l *RemoteLock) ID() uint64 { return l.id }

// Range returns the locked range.
func (l *RemoteLock) Range() Range { return l.rng }

// Read copies count bytes starting at addr.
func (l *RemoteLock) Read(ctx context.Context, addr Addr, count uint64) ([]byte, error) {
	resp, err := l.client.call(ctx, &wire.CRead{LockID: l.id, Addr: addr, Len: count})
	if err != nil {
		return nil, err
	}
	d, ok := resp.(*wire.CData)
	if !ok {
		return nil, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	if d.Err != "" {
		return nil, errors.New(d.Err)
	}
	return d.Data, nil
}

// Write copies data into the locked range at addr.
func (l *RemoteLock) Write(ctx context.Context, addr Addr, data []byte) error {
	return ackToErr(l.client.call(ctx, &wire.CWrite{LockID: l.id, Addr: addr, Data: data}))
}

// Unlock releases the lock context.
func (l *RemoteLock) Unlock(ctx context.Context) error {
	return ackToErr(l.client.call(ctx, &wire.CUnlock{LockID: l.id}))
}

// Stats is a daemon's activity and resource snapshot.
type Stats struct {
	Node           NodeID
	Lookups        uint64
	DirHits        uint64
	ClusterHits    uint64
	TreeWalks      uint64
	LocksGranted   uint64
	ReleaseRetries uint64
	Promotions     uint64
	MemPages       uint64
	DiskPages      uint64
	HomedRegions   uint64
	Members        []NodeID
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.call(ctx, &wire.StatsReq{})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.StatsResp)
	if !ok {
		return nil, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	return &Stats{
		Node:           sr.Node,
		Lookups:        sr.Lookups,
		DirHits:        sr.DirHits,
		ClusterHits:    sr.ClusterHits,
		TreeWalks:      sr.TreeWalks,
		LocksGranted:   sr.LocksGranted,
		ReleaseRetries: sr.ReleaseRetries,
		Promotions:     sr.Promotions,
		MemPages:       sr.MemPages,
		DiskPages:      sr.DiskPages,
		HomedRegions:   sr.HomedRegions,
		Members:        sr.Members,
	}, nil
}

// MetricValue is one named counter or gauge from a daemon's registry.
type MetricValue struct {
	Name  string
	Value int64
}

// HistogramValue summarizes one latency/size histogram from a daemon's
// registry. Buckets[i] counts observations in [2^(i-1), 2^i); see
// telemetry.BucketBound.
type HistogramValue struct {
	Name    string
	Count   uint64
	Sum     uint64
	Buckets []uint64
}

// Metrics is a daemon's full telemetry snapshot: every registered
// counter, gauge, and histogram, by name.
type Metrics struct {
	Node       NodeID
	Counters   []MetricValue
	Gauges     []MetricValue
	Histograms []HistogramValue
}

// Span is one recorded trace span from a daemon's ring buffer.
type Span struct {
	Trace         uint64
	Span          uint64
	Parent        uint64
	Node          NodeID
	Name          string
	StartUnixNano int64
	DurationNs    int64
}

func (c *Client) statsQuery(ctx context.Context, includeSpans bool) (*wire.StatsReply, error) {
	resp, err := c.call(ctx, &wire.StatsQuery{IncludeSpans: includeSpans})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.StatsReply)
	if !ok {
		return nil, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	return sr, nil
}

// Metrics fetches the daemon's full telemetry snapshot.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	sr, err := c.statsQuery(ctx, false)
	if err != nil {
		return nil, err
	}
	m := &Metrics{Node: sr.Node}
	for _, cc := range sr.Counters {
		m.Counters = append(m.Counters, MetricValue{Name: cc.Name, Value: int64(cc.Value)})
	}
	for _, g := range sr.Gauges {
		m.Gauges = append(m.Gauges, MetricValue{Name: g.Name, Value: g.Value})
	}
	for _, h := range sr.Hists {
		m.Histograms = append(m.Histograms, HistogramValue{
			Name: h.Name, Count: h.Count, Sum: h.Sum, Buckets: h.Buckets,
		})
	}
	return m, nil
}

// Traces fetches the daemon's recorded trace spans, oldest first.
func (c *Client) Traces(ctx context.Context) ([]Span, error) {
	sr, err := c.statsQuery(ctx, true)
	if err != nil {
		return nil, err
	}
	spans := make([]Span, 0, len(sr.Spans))
	for _, s := range sr.Spans {
		spans = append(spans, Span{
			Trace:         s.Trace,
			Span:          s.Span,
			Parent:        s.Parent,
			Node:          s.Node,
			Name:          s.Name,
			StartUnixNano: s.StartUnixNano,
			DurationNs:    s.DurationNs,
		})
	}
	return spans, nil
}

// Ping measures one round trip to the daemon with a timestamped ping.
func (c *Client) Ping(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	resp, err := c.call(ctx, &wire.Ping{From: c.tr.Self(), SentUnixNano: start.UnixNano()})
	if err != nil {
		return 0, err
	}
	pong, ok := resp.(*wire.Pong)
	if !ok {
		return 0, fmt.Errorf("khazana: unexpected reply %T", resp)
	}
	if pong.EchoUnixNano != start.UnixNano() {
		return 0, fmt.Errorf("khazana: ping echo mismatch")
	}
	return time.Since(start), nil
}

// Migrate moves a region's primary home to another node (§7 migration
// policies drive this mechanism).
func (c *Client) Migrate(ctx context.Context, start Addr, newHome NodeID) error {
	return ackToErr(c.call(ctx, &wire.Migrate{Start: start, NewHome: newHome, Principal: c.principal}))
}

// clientIDBase is a convention for client node IDs, far above daemon IDs.
const clientIDBase ktypes.NodeID = 1 << 20

// ClientID returns a conventional unique client node ID for index i.
func ClientID(i int) NodeID { return clientIDBase + ktypes.NodeID(i) }
