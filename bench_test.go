// Benchmarks, one group per experiment in DESIGN.md §4. These
// measure per-operation protocol cost on a zero-latency simulated network
// (pure software-path cost); cmd/kbench runs the full experiments with
// simulated link latency and prints the paper-shape tables.
package khazana_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"testing"

	"khazana"
	"khazana/internal/baseline"
	"khazana/internal/experiments"
	"khazana/internal/ktypes"
	"khazana/kfs"
	"khazana/kobj"
)

// benchCluster builds a zero-latency cluster for benchmarks.
func benchCluster(b *testing.B, n int) *khazana.Cluster {
	b.Helper()
	c, err := khazana.NewCluster(n, khazana.WithStoreDir(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func benchRegion(b *testing.B, n *khazana.Node, size uint64, attrs khazana.Attrs) khazana.Addr {
	b.Helper()
	ctx := context.Background()
	start, err := n.Reserve(ctx, size, attrs, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := n.Allocate(ctx, start, "bench"); err != nil {
		b.Fatal(err)
	}
	return start
}

func benchRead(b *testing.B, n *khazana.Node, start khazana.Addr, size uint64) {
	b.Helper()
	ctx := context.Background()
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockRead, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lk.Read(start, size); err != nil {
		b.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		b.Fatal(err)
	}
}

func benchWrite(b *testing.B, n *khazana.Node, start khazana.Addr, data []byte) {
	b.Helper()
	ctx := context.Background()
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: uint64(len(data))}, khazana.LockWrite, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := lk.Write(start, data); err != nil {
		b.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		b.Fatal(err)
	}
}

// --- E1: Figure 1 topology ---------------------------------------------------

// BenchmarkFig1Topology measures a read of replicated data from a node
// that holds no copy (the n1 access of Figure 1) against one that does.
func BenchmarkFig1Topology(b *testing.B) {
	c := benchCluster(b, 5)
	start := benchRegion(b, c.Node(3), 4096, khazana.Attrs{})
	benchWrite(b, c.Node(3), start, []byte("figure 1 square"))
	benchRead(b, c.Node(5), start, 4096) // replicate on n5

	b.Run("n1-remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRead(b, c.Node(1), start, 4096)
		}
	})
	b.Run("n3-home", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRead(b, c.Node(3), start, 4096)
		}
	})
}

// --- E2: Figure 2 lock+fetch -----------------------------------------------

// BenchmarkFig2LockFetch measures the full <lock, fetch, unlock> sequence
// for a page owned by a remote node.
func BenchmarkFig2LockFetch(b *testing.B) {
	c := benchCluster(b, 2)
	start := benchRegion(b, c.Node(1), 4096, khazana.Attrs{})
	benchWrite(b, c.Node(1), start, []byte("page p"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRead(b, c.Node(2), start, 4096)
	}
}

// --- E3: lookup path ------------------------------------------------------------

// BenchmarkE3LookupPath measures the region-location stages of §3.2.
func BenchmarkE3LookupPath(b *testing.B) {
	c := benchCluster(b, 3)
	ctx := context.Background()
	start := benchRegion(b, c.Node(2), 4096, khazana.Attrs{})
	if _, err := c.Node(3).GetAttr(ctx, start); err != nil {
		b.Fatal(err)
	}
	b.Run("directory-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Node(3).GetAttr(ctx, start); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-full-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Node(3).Core().RegionDir().Remove(start)
			if _, err := c.Node(3).GetAttr(ctx, start); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map-tree-walk", func(b *testing.B) {
		amap := c.Node(3).Core().AddressMap()
		for i := 0; i < b.N; i++ {
			if _, _, err := amap.Lookup(ctx, start); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E4: scalability ---------------------------------------------------------

// BenchmarkE4Scalability measures disjoint (home-local) vs contended
// (remote shared region) writes.
func BenchmarkE4Scalability(b *testing.B) {
	c := benchCluster(b, 4)
	own := benchRegion(b, c.Node(2), 4096, khazana.Attrs{})
	shared := benchRegion(b, c.Node(1), 4096, khazana.Attrs{})
	payload := []byte("payload")
	b.Run("disjoint-local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchWrite(b, c.Node(2), own, payload)
		}
	})
	b.Run("contended-remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchWrite(b, c.Node(i%3+2), shared, payload)
		}
	})
}

// --- E5: consistency protocols -----------------------------------------------

// BenchmarkE5Consistency measures remote reads and writes per protocol.
func BenchmarkE5Consistency(b *testing.B) {
	for _, proto := range []struct {
		name  string
		attrs khazana.Attrs
	}{
		{"crew", khazana.Attrs{Protocol: khazana.CREW}},
		{"release", khazana.Attrs{Protocol: khazana.Release}},
		{"eventual", khazana.Attrs{Protocol: khazana.Eventual}},
	} {
		c := benchCluster(b, 2)
		start := benchRegion(b, c.Node(1), 4096, proto.attrs)
		benchWrite(b, c.Node(1), start, []byte("seed"))
		benchRead(b, c.Node(2), start, 64)
		b.Run(proto.name+"/remote-read", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRead(b, c.Node(2), start, 64)
			}
		})
		b.Run(proto.name+"/remote-write", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchWrite(b, c.Node(2), start, []byte("update"))
			}
		})
	}
}

// --- E6: replication ------------------------------------------------------------

// BenchmarkE6Replication measures replica maintenance per MinReplicas.
func BenchmarkE6Replication(b *testing.B) {
	for _, k := range []uint8{1, 2, 4} {
		b.Run(fmt.Sprintf("minreplicas-%d", k), func(b *testing.B) {
			c := benchCluster(b, 5)
			start := benchRegion(b, c.Node(1), 4096, khazana.Attrs{MinReplicas: k})
			benchWrite(b, c.Node(1), start, []byte("replicated"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Node(1).Core().MaintainReplicas()
			}
		})
	}
}

// --- E7: filesystem vs baseline -----------------------------------------------

// BenchmarkE7Filesystem compares kfs operations with the hand-coded
// central-server baseline.
func BenchmarkE7Filesystem(b *testing.B) {
	c := benchCluster(b, 3)
	ctx := context.Background()
	super, err := kfs.Mkfs(ctx, c.Node(1), "bench", khazana.Attrs{})
	if err != nil {
		b.Fatal(err)
	}
	fsRemote, err := kfs.Mount(ctx, c.Node(3), super, "bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("k"), 4096)
	f, err := fsRemote.Create(ctx, "/bench.dat")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, payload, 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.Run("kfs-remote-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.WriteAt(ctx, payload, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kfs-remote-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.ReadAt(ctx, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	srvTr, err := c.Network.Attach(ktypes.NodeID(900))
	if err != nil {
		b.Fatal(err)
	}
	baseline.NewServer(srvTr)
	cliTr, err := c.Network.Attach(ktypes.NodeID(901))
	if err != nil {
		b.Fatal(err)
	}
	bcli := baseline.NewClient(cliTr, 900)
	key := khazana.Addr{}
	key = key.MustAdd(1 << 40)
	b.Run("baseline-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := bcli.Put(ctx, key, 0, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bcli.Get(ctx, key, 0, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E8: object invocation ------------------------------------------------------

// BenchmarkE8Objects compares local-replica and remote-RPC invocation.
func BenchmarkE8Objects(b *testing.B) {
	counter := kobj.Type{
		Name: "counter",
		Methods: map[string]kobj.MethodSpec{
			"get": {ReadOnly: true, Fn: func(state, _ []byte) ([]byte, []byte, error) {
				return state, state, nil
			}},
			"add": {Fn: func(state, _ []byte) ([]byte, []byte, error) {
				v := binary.LittleEndian.Uint64(state) + 1
				out := make([]byte, 8)
				binary.LittleEndian.PutUint64(out, v)
				return out, out, nil
			}},
		},
	}
	ctx := context.Background()
	setup := func(b *testing.B, attrs khazana.Attrs, policy kobj.Policy) (*kobj.Runtime, kobj.Ref) {
		c := benchCluster(b, 2)
		r1 := kobj.NewRuntime(c.Node(1), "bench")
		r1.RegisterType(counter)
		r2 := kobj.NewRuntime(c.Node(2), "bench")
		r2.RegisterType(counter)
		ref, err := r1.New(ctx, "counter", make([]byte, 8), 0, attrs)
		if err != nil {
			b.Fatal(err)
		}
		r2.SetPolicy(policy)
		return r2, ref
	}
	b.Run("weak-local-read", func(b *testing.B) {
		r, ref := setup(b, khazana.Attrs{Level: khazana.Weak}, kobj.PolicyLocal)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Invoke(ctx, ref, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-rpc-read", func(b *testing.B) {
		r, ref := setup(b, khazana.Attrs{Level: khazana.Weak}, kobj.PolicyRemote)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Invoke(ctx, ref, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("strict-local-read", func(b *testing.B) {
		r, ref := setup(b, khazana.Attrs{}, kobj.PolicyLocal)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Invoke(ctx, ref, "get", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: failure handling -----------------------------------------------------

// BenchmarkE9Failure measures the background release-retry round trip.
func BenchmarkE9Failure(b *testing.B) {
	c := benchCluster(b, 2)
	start := benchRegion(b, c.Node(1), 4096, khazana.Attrs{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Write under a crash window so the release queues, then let
		// the retry drain.
		lk, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockWrite, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := lk.Write(start, []byte("deferred")); err != nil {
			b.Fatal(err)
		}
		c.Crash(1)
		if err := lk.Unlock(ctx); err != nil {
			b.Fatal(err)
		}
		c.Restart(1)
		c.Node(2).Core().RunRetries()
		if c.Node(2).Core().PendingRetries() != 0 {
			b.Fatal("retry did not drain")
		}
	}
}

// --- E10: page size ------------------------------------------------------------

// BenchmarkE10PageSize measures a 256 KiB cold remote scan per page size.
func BenchmarkE10PageSize(b *testing.B) {
	for _, ps := range []uint32{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("scan-%dK-pages", ps/1024), func(b *testing.B) {
			c := benchCluster(b, 2)
			const regionSize = 256 * 1024
			start := benchRegion(b, c.Node(1), regionSize, khazana.Attrs{PageSize: ps})
			benchWrite(b, c.Node(1), start, bytes.Repeat([]byte("s"), regionSize))
			b.SetBytes(regionSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Cold cache each iteration: drop node 2's copies.
				for _, page := range pagesOf(start, regionSize, ps) {
					c.Node(2).Core().Store().Delete(page)
					c.Node(2).Core().PageDir().Delete(page)
				}
				b.StartTimer()
				benchRead(b, c.Node(2), start, regionSize)
			}
		})
	}
}

func pagesOf(start khazana.Addr, size uint64, ps uint32) []khazana.Addr {
	var out []khazana.Addr
	for off := uint64(0); off < size; off += uint64(ps) {
		out = append(out, start.MustAdd(off))
	}
	return out
}

// --- E11: stale hints ---------------------------------------------------------

// BenchmarkE11StaleMap measures a lookup that must refresh a stale
// descriptor versus a fresh one.
func BenchmarkE11StaleMap(b *testing.B) {
	c := benchCluster(b, 3)
	ctx := context.Background()
	start := benchRegion(b, c.Node(2), 4096, khazana.Attrs{})
	fresh, err := c.Node(3).GetAttr(ctx, start)
	if err != nil {
		b.Fatal(err)
	}
	stale := fresh.Clone()
	stale.Home = []khazana.NodeID{9} // points at a nonexistent node
	stale.Epoch = 0
	b.Run("stale-descriptor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c.Node(3).Core().RegionDir().Remove(start)
			c.Node(3).Core().RegionDir().Insert(stale)
			b.StartTimer()
			benchRead(b, c.Node(3), start, 64)
		}
	})
	b.Run("fresh-descriptor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchRead(b, c.Node(3), start, 64)
		}
	})
}

// --- E13: batched multi-page transfers --------------------------------------

// BenchmarkE13Batching measures a remote write lock/unlock cycle over a
// multi-page region, batched pipeline versus one RPC per page, reporting
// the wire cost as rpcs/op. The batched path should pin rpcs/op at two
// (one PageReqBatch, one ReleaseBatch to the single home) while the
// per-page path pays two per page. On this zero-latency network ns/op
// reflects pure software-path cost, where batching buys nothing (the same
// bytes move in two large frames instead of many small ones); the wire
// round trips it eliminates dominate as soon as links have latency, which
// is E13's table in cmd/kbench.
func BenchmarkE13Batching(b *testing.B) {
	for _, pages := range []int{16, 64, 256} {
		for _, mode := range []string{"batched", "per-page"} {
			b.Run(fmt.Sprintf("pages=%d/%s", pages, mode), func(b *testing.B) {
				opts := []khazana.ClusterOption{khazana.WithStoreDir(b.TempDir())}
				if mode == "per-page" {
					opts = append(opts, khazana.WithPerPageTransfers())
				}
				c, err := khazana.NewCluster(2, opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(c.Close)
				size := uint64(pages) * 4096
				start := benchRegion(b, c.Node(1), size, khazana.Attrs{})
				benchWrite(b, c.Node(1), start, make([]byte, size))
				ctx := context.Background()
				cycle := func() {
					lk, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockWrite, "bench")
					if err != nil {
						b.Fatal(err)
					}
					if err := lk.Write(start, []byte("cycle")); err != nil {
						b.Fatal(err)
					}
					if err := lk.Unlock(ctx); err != nil {
						b.Fatal(err)
					}
				}
				// Warm node 2's descriptor cache off the clock.
				cycle()
				reqs0, _ := c.Network.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycle()
				}
				b.StopTimer()
				reqs1, _ := c.Network.Stats()
				b.ReportMetric(float64(reqs1-reqs0)/float64(b.N), "rpcs/op")
			})
		}
	}
}

// --- E14: zero-copy frame pipeline -------------------------------------------

// BenchmarkE14ZeroCopy measures the allocation cost of cached reads
// through the zero-copy view path against the copying Read path, and the
// steady-state cost of a cold remote fetch. Run with -benchmem: the view
// should report ~0 B/op while the copy pays the page buffer every call,
// and the fetch's page data should ride pooled frames (no per-op
// page-sized allocation beyond the protocol's fixed costs).
func BenchmarkE14ZeroCopy(b *testing.B) {
	c := benchCluster(b, 2)
	ctx := context.Background()
	const ps = 4096
	start := benchRegion(b, c.Node(1), ps, khazana.Attrs{})
	benchWrite(b, c.Node(1), start, bytes.Repeat([]byte("z"), ps))

	b.Run("cached-view", func(b *testing.B) {
		lk, err := c.Node(1).Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockRead, "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(ps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lk.ReadView(start, ps); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := lk.Unlock(ctx); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("cached-copy", func(b *testing.B) {
		lk, err := c.Node(1).Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockRead, "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(ps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lk.Read(start, ps); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := lk.Unlock(ctx); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("remote-fetch", func(b *testing.B) {
		benchRead(b, c.Node(2), start, ps) // warm descriptors and pools
		b.ReportAllocs()
		b.SetBytes(ps)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c.Node(2).Core().Store().Delete(start)
			c.Node(2).Core().PageDir().Delete(start)
			b.StartTimer()
			benchRead(b, c.Node(2), start, ps)
		}
	})
}

// --- E20: descriptor partition -----------------------------------------------

// BenchmarkE20RingLookup measures a cold descriptor lookup through the
// consistent-hash ring (one RPC hop to a bucket owner) against the
// legacy cold path on a WithNoRing cluster (manager hint + verify, tree
// walk on miss). The reader's region directory is dropped every
// iteration so each lookup starts cold.
func BenchmarkE20RingLookup(b *testing.B) {
	run := func(b *testing.B, opts ...khazana.ClusterOption) {
		opts = append([]khazana.ClusterOption{khazana.WithStoreDir(b.TempDir())}, opts...)
		c, err := khazana.NewCluster(8, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		ctx := context.Background()
		start := benchRegion(b, c.Node(2), 4096, khazana.Attrs{})
		for i := 1; i <= c.Len(); i++ {
			c.Node(i).Core().SendHeartbeat()
		}
		for i := 1; i <= c.Len(); i++ {
			c.Node(i).Core().RingSettle()
		}
		reader := c.Node(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reader.Core().RegionDir().Remove(start)
			if _, err := reader.GetAttr(ctx, start); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ring-one-hop", func(b *testing.B) { run(b) })
	b.Run("legacy-cold", func(b *testing.B) { run(b, khazana.WithNoRing()) })
}

// BenchmarkExperimentHarness runs one fast harness pass end to end, so the
// full experiment pipeline is exercised by `go test -bench`.
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := experiments.Config{Duration: 30 * 1000 * 1000, Dir: b.TempDir()} // 30ms windows
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1Figure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
